//! Out-of-order superscalar extension — the paper's §IX future work
//! ("we will explore and extend the idea to the out-of-order superscalar
//! processor").
//!
//! A trace-driven dataflow model: instructions dispatch in order at up to
//! `width` per cycle into a `rob_entries`-deep window, issue when their
//! register/flag/memory-order dependences are satisfied (execution
//! resources are idealised — a standard limit-study simplification,
//! stated here so the numbers are read correctly), and commit in order at
//! up to `width` per cycle. The front end, memory hierarchy, predictors
//! and the VCFR/DRC mediation layer are the same components the in-order
//! model uses, so the three machines (baseline / naive ILR / VCFR) remain
//! directly comparable.
//!
//! The core is a first-class [`crate::Session`] backend
//! ([`crate::EngineKind::Ooo`]): it tracks redirect stall cycles, pays
//! epoch re-randomization pauses, serialises into checkpoints, and keeps
//! a front-end floor identity the audit can check exactly — the fetch
//! clock absorbs every fetch, redirect and rerand stall cycle serially,
//! so `cycles ≥ fetch_stall + redirect_stall + rerand_stall` always.
//! Unlike the in-order core, the OoO model does not track stack-slot
//! hygiene, so an epoch swap costs quiesce + table rebuild only (no live
//! return-address rewrite).

use crate::config::{DrcBacking, SimConfig};
use crate::engine::{
    exec_extra_cycles, Mode, SimError, SimOutput, RERAND_ENTRY_CYCLES, RERAND_QUIESCE_CYCLES,
};
use crate::hierarchy::MemoryHierarchy;
use crate::predict::{BranchStats, Btb, Gshare, Ras};
use crate::stats::SimStats;
use std::collections::VecDeque;
use vcfr_core::{rerandomize, Drc, DrcConfig, LayoutMap, OrigAddr, RandAddr, TranslationTable};
use vcfr_isa::wire::{Reader, WireError, Writer};
use vcfr_isa::{Addr, ControlFlow, Machine, Reg, RunOutcome, StepInfo};
use vcfr_rewriter::RandomizedProgram;

/// Geometry of the out-of-order core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OooConfig {
    /// Fetch/dispatch/commit width (instructions per cycle).
    pub width: usize,
    /// Reorder-buffer depth.
    pub rob_entries: usize,
}

impl Default for OooConfig {
    fn default() -> OooConfig {
        OooConfig { width: 4, rob_entries: 128 }
    }
}

/// Pipeline depth between fetch and dispatch.
const DECODE_DEPTH: u64 = 4;
/// Depth between the last execution cycle and retirement.
const COMMIT_DEPTH: u64 = 2;

pub(crate) struct OooEngine {
    pub(crate) cfg: SimConfig,
    pub(crate) ooo: OooConfig,
    pub(crate) hier: MemoryHierarchy,
    pub(crate) gshare: Gshare,
    pub(crate) btb: Btb,
    pub(crate) ras: Ras,
    pub(crate) bstats: BranchStats,
    // Front end.
    pub(crate) fetch_cycle: u64,
    pub(crate) fetch_slots: usize,
    pub(crate) redirect_at: u64,
    pub(crate) window_line: Option<Addr>,
    // Dataflow state.
    pub(crate) reg_ready: [u64; 16],
    pub(crate) flags_ready: u64,
    pub(crate) last_store_done: u64,
    // In-order retire bookkeeping.
    pub(crate) rob: VecDeque<u64>,
    pub(crate) lsq: VecDeque<u64>,
    pub(crate) commit_cycle: u64,
    pub(crate) commit_slots: usize,
    pub(crate) last_retire: u64,
    // VCFR.
    pub(crate) drc: Option<Drc>,
    /// Layout of the current re-randomization epoch (None before the
    /// first swap: `rp.layout` is live).
    pub(crate) epoch_layout: Option<LayoutMap>,
    /// Tables of the current epoch, rebuilt at `rp.table.base()`.
    pub(crate) epoch_table: Option<TranslationTable>,
    pub(crate) rerand_epochs: u64,
    pub(crate) rerand_stall: u64,
    pub(crate) drc_walk: u64,
    pub(crate) fetch_stall: u64,
    pub(crate) load_stall: u64,
    pub(crate) redirect_stall: u64,
    pub(crate) exec_extra: u64,
    pub(crate) instructions: u64,
}

impl OooEngine {
    pub(crate) fn new(cfg: &SimConfig, ooo: OooConfig, drc: Option<DrcConfig>) -> OooEngine {
        OooEngine {
            cfg: *cfg,
            ooo,
            hier: MemoryHierarchy::new(cfg),
            gshare: Gshare::new(cfg.gshare),
            btb: Btb::new(cfg.btb),
            ras: Ras::new(cfg.ras_entries),
            bstats: BranchStats::default(),
            fetch_cycle: 0,
            fetch_slots: 0,
            redirect_at: 0,
            window_line: None,
            reg_ready: [0; 16],
            flags_ready: 0,
            last_store_done: 0,
            rob: VecDeque::new(),
            lsq: VecDeque::new(),
            commit_cycle: 0,
            commit_slots: 0,
            last_retire: 0,
            drc: drc.map(Drc::new),
            epoch_layout: None,
            epoch_table: None,
            rerand_epochs: 0,
            rerand_stall: 0,
            drc_walk: 0,
            fetch_stall: 0,
            load_stall: 0,
            redirect_stall: 0,
            exec_extra: 0,
            instructions: 0,
        }
    }

    fn walk(&mut self, entry_addr: Addr, now: u64) -> u64 {
        match self.cfg.drc_backing {
            DrcBacking::SharedL2 => self.hier.table_walk(entry_addr, now),
            DrcBacking::Dedicated { latency } => latency,
        }
    }

    /// De-randomizes a transfer target through the DRC; returns the walk
    /// latency on a miss (0 on a hit).
    ///
    /// # Errors
    ///
    /// [`SimError::MissingDrc`] when the engine was built without a DRC.
    fn derand(&mut self, target: Addr, rp: &RandomizedProgram, now: u64) -> Result<u64, SimError> {
        let table = self.epoch_table.as_ref().unwrap_or(&rp.table);
        let rand = match &self.epoch_layout {
            Some(m) => m.to_rand(OrigAddr(target)).map(|r| r.raw()).unwrap_or(target),
            None => rp.rand_or_orig(target),
        };
        let lookup = match self.drc.as_mut() {
            Some(drc) => drc.derandomize(RandAddr(rand), table),
            None => return Err(SimError::MissingDrc),
        };
        match lookup {
            Ok(l) if !l.hit => {
                let w = self.walk(l.entry_addr, now);
                self.drc_walk += w;
                Ok(w)
            }
            _ => Ok(0),
        }
    }

    /// Drains a pending front-end redirect: fetch jumps forward to the
    /// resolution point and the skipped cycles are charged as redirect
    /// stall. A redirect landing on (or behind) the current fetch cycle
    /// contributes zero — `saturating_sub`, never a wrapped subtraction.
    fn drain_redirect(&mut self) {
        let lost = self.redirect_at.saturating_sub(self.fetch_cycle);
        if lost > 0 {
            self.redirect_stall += lost;
            self.fetch_cycle = self.redirect_at;
            self.fetch_slots = 0;
        }
    }

    /// Swaps to a freshly re-randomized layout (§V-C): the whole window
    /// drains, the DRC is flushed and the tables are rebuilt at the same
    /// base. Both the fetch and commit clocks advance past the pause, so
    /// the front-end floor identity stays exact.
    fn rerand_swap(&mut self, rp: &RandomizedProgram) {
        self.rerand_epochs += 1;
        // Deterministic per epoch: seeded by the epoch ordinal alone.
        let seed = 0x5eed_0000_0000_0000u64 ^ self.rerand_epochs;
        let cur = self.epoch_layout.as_ref().unwrap_or(&rp.layout);
        let fresh = rerandomize(cur, rp.region.0, rp.region.1, seed);
        let mut table = TranslationTable::from_layout(&fresh, rp.table.base());
        for a in rp.table.unrandomized_addrs() {
            table.add_unrandomized(a);
        }
        if let Some(drc) = self.drc.as_mut() {
            drc.flush();
        }
        // No live stack-slot rewrite: the OoO model does not track stack
        // hygiene, so the swap costs quiesce + table rebuild only.
        let cost = RERAND_QUIESCE_CYCLES + table.len() as u64 * RERAND_ENTRY_CYCLES;
        let now = self.last_retire.max(self.fetch_cycle) + cost;
        self.rerand_stall += cost;
        self.fetch_cycle = now;
        self.fetch_slots = 0;
        self.redirect_at = self.redirect_at.max(now);
        self.window_line = None;
        self.rob.clear();
        self.lsq.clear();
        self.commit_cycle = now;
        self.commit_slots = 0;
        self.last_retire = now;
        self.epoch_layout = Some(fresh);
        self.epoch_table = Some(table);
    }

    /// One instruction through the timing model.
    ///
    /// # Errors
    ///
    /// [`SimError::MissingDrc`] when a VCFR mediation event fires on an
    /// engine built without a DRC (mode/configuration mismatch).
    pub(crate) fn step(
        &mut self,
        info: &StepInfo,
        fetch_pc: Addr,
        key: &impl Fn(Addr) -> Addr,
        vcfr: Option<&RandomizedProgram>,
    ) -> Result<(), SimError> {
        self.instructions += 1;
        let cfg = self.cfg;

        // Context-switch model: periodically invalidate the DRC (other
        // processes own it in between).
        if let (Some(interval), Some(drc)) = (cfg.drc_flush_interval, self.drc.as_mut()) {
            if interval > 0 && self.instructions.is_multiple_of(interval) {
                drc.flush();
            }
        }

        // Live re-randomization (§V-C): every N instructions a VCFR run
        // swaps to a fresh layout, paying the flush-and-rebuild pause.
        if let (Some(epoch), Some(rp)) = (cfg.rerand_epoch, vcfr) {
            if epoch > 0 && self.instructions.is_multiple_of(epoch) {
                self.rerand_swap(rp);
            }
        }

        // ---- fetch (width per cycle, same byte-queue/line model) -------
        self.drain_redirect();
        let line_bytes = cfg.il1.line_bytes as Addr;
        let first = fetch_pc & !(line_bytes - 1);
        let last = (fetch_pc + info.len as Addr - 1) & !(line_bytes - 1);
        let mut stall = 0;
        let mut line = first;
        loop {
            if self.window_line != Some(line) {
                stall += self.hier.fetch_line(line, self.fetch_cycle);
                self.window_line = Some(line);
            }
            if line == last {
                break;
            }
            line += line_bytes;
        }
        if stall > 0 {
            self.fetch_cycle += stall;
            self.fetch_slots = 0;
            self.fetch_stall += stall;
        }
        let fetch_done = self.fetch_cycle;
        self.fetch_slots += 1;
        if self.fetch_slots >= self.ooo.width {
            self.fetch_cycle += 1;
            self.fetch_slots = 0;
        }

        // ---- dispatch: in order, ROB-limited -----------------------------
        let mut dispatch = fetch_done + DECODE_DEPTH;
        if self.rob.len() >= self.ooo.rob_entries {
            if let Some(oldest_retire) = self.rob.pop_front() {
                dispatch = dispatch.max(oldest_retire);
            }
        }

        // ---- issue: dataflow ---------------------------------------------
        let mut ready = dispatch;
        for r in info.inst.reads().iter() {
            ready = ready.max(self.reg_ready[r.index()]);
        }
        if info.inst.reads_flags() {
            ready = ready.max(self.flags_ready);
        }
        // Conservative memory ordering: loads wait for the youngest older
        // store, stores serialise behind each other.
        let is_load = info.mem_accesses().any(|a| !a.write);
        let is_store = info.mem_accesses().any(|a| a.write);
        if is_load || is_store {
            ready = ready.max(self.last_store_done);
            // LSQ capacity: a memory op cannot enter until the oldest
            // in-flight one completes when the queue is full.
            if self.lsq.len() >= self.cfg.lsq_entries {
                if let Some(oldest) = self.lsq.pop_front() {
                    ready = ready.max(oldest);
                }
            }
        }

        let extra = exec_extra_cycles(&info.inst);
        self.exec_extra += extra;
        let mut lat = 1 + extra;
        for acc in info.mem_accesses() {
            let l = self.hier.data_access(acc.addr, acc.write, ready);
            self.load_stall += l;
            if !acc.write {
                lat += l;
            }
        }
        let mut exec_done = ready + lat;

        // ---- VCFR mediation ------------------------------------------------
        if let Some(rp) = vcfr {
            match info.control {
                Some(ControlFlow::Call { ret_addr, .. })
                | Some(ControlFlow::IndirectCall { ret_addr, .. }) => {
                    let table = self.epoch_table.as_ref().unwrap_or(&rp.table);
                    let lookup = match self.drc.as_mut() {
                        Some(drc) => drc.randomize(OrigAddr(ret_addr), table),
                        None => return Err(SimError::MissingDrc),
                    };
                    if let Ok(l) = lookup {
                        if !l.hit {
                            let w = self.walk(l.entry_addr, ready);
                            self.drc_walk += w;
                        }
                    }
                }
                _ => {}
            }
        }

        // ---- control flow ----------------------------------------------------
        if let Some(cf) = info.control {
            let kpc = key(info.pc);
            match cf {
                ControlFlow::Branch { taken, target } => {
                    self.bstats.predictions += 1;
                    let predicted = self.gshare.predict(kpc);
                    self.gshare.update(kpc, taken);
                    if predicted != taken {
                        self.bstats.mispredictions += 1;
                        let w = match (taken, vcfr) {
                            (true, Some(rp)) => self.derand(target, rp, exec_done)?,
                            _ => 0,
                        };
                        self.redirect_at =
                            self.redirect_at.max(exec_done + cfg.mispredict_penalty + w);
                    } else if taken {
                        self.taken_lookup(kpc, key(target), target, vcfr, fetch_done, exec_done)?;
                    }
                }
                ControlFlow::Jump { target } => {
                    self.taken_lookup(kpc, key(target), target, vcfr, fetch_done, exec_done)?;
                }
                ControlFlow::Call { target, ret_addr } => {
                    self.taken_lookup(kpc, key(target), target, vcfr, fetch_done, exec_done)?;
                    self.ras.push(key(ret_addr));
                }
                ControlFlow::IndirectCall { target, ret_addr } => {
                    self.indirect_lookup(kpc, key(target), target, vcfr, exec_done)?;
                    self.ras.push(key(ret_addr));
                }
                ControlFlow::IndirectJump { target } => {
                    self.indirect_lookup(kpc, key(target), target, vcfr, exec_done)?;
                }
                ControlFlow::Return { target } => {
                    self.bstats.ras_predictions += 1;
                    let w = match vcfr {
                        Some(rp) => self.derand(target, rp, exec_done)?,
                        None => 0,
                    };
                    match self.ras.pop() {
                        Some(p) if p == key(target) => {}
                        _ => {
                            self.bstats.ras_mispredictions += 1;
                            self.redirect_at =
                                self.redirect_at.max(exec_done + cfg.mispredict_penalty + w);
                        }
                    }
                }
            }
            if cf.taken_target().is_some() {
                self.window_line = None;
            }
            // A resolved transfer pins the dataflow: younger instructions
            // were fetched after the redirect anyway.
            exec_done = exec_done.max(ready + 1);
        }

        // ---- writeback ----------------------------------------------------
        for r in info.inst.writes().iter() {
            // Stack-pointer updates are cheap renames in real cores: they
            // complete at dispatch, not after the memory access.
            let done = if r == Reg::Rsp { ready + 1 } else { exec_done };
            self.reg_ready[r.index()] = self.reg_ready[r.index()].max(done);
        }
        if info.inst.writes_flags() {
            self.flags_ready = self.flags_ready.max(exec_done);
        }
        if is_store {
            self.last_store_done = self.last_store_done.max(exec_done);
        }
        if is_load || is_store {
            self.lsq.push_back(exec_done);
        }

        // ---- in-order commit, width per cycle ------------------------------
        let mut retire = (exec_done + COMMIT_DEPTH).max(self.last_retire);
        if retire > self.commit_cycle {
            self.commit_cycle = retire;
            self.commit_slots = 0;
        }
        self.commit_slots += 1;
        if self.commit_slots >= self.ooo.width {
            self.commit_cycle += 1;
            self.commit_slots = 0;
        }
        retire = retire.max(self.commit_cycle);
        self.last_retire = retire;
        self.rob.push_back(retire);
        Ok(())
    }

    fn taken_lookup(
        &mut self,
        kpc: Addr,
        ktarget: Addr,
        target: Addr,
        vcfr: Option<&RandomizedProgram>,
        fetch_done: u64,
        exec_done: u64,
    ) -> Result<(), SimError> {
        self.bstats.btb_lookups += 1;
        match self.btb.lookup(kpc) {
            Some(t) if t == ktarget => {}
            found => {
                if found.is_none() {
                    self.bstats.btb_misses += 1;
                } else {
                    self.bstats.btb_wrong_target += 1;
                }
                let w = match vcfr {
                    Some(rp) => self.derand(target, rp, exec_done)?,
                    None => 0,
                };
                self.redirect_at =
                    self.redirect_at.max(fetch_done + self.cfg.btb_miss_penalty + w);
                self.btb.update(kpc, ktarget);
            }
        }
        Ok(())
    }

    fn indirect_lookup(
        &mut self,
        kpc: Addr,
        ktarget: Addr,
        target: Addr,
        vcfr: Option<&RandomizedProgram>,
        exec_done: u64,
    ) -> Result<(), SimError> {
        self.bstats.btb_lookups += 1;
        let w = match vcfr {
            Some(rp) => self.derand(target, rp, exec_done)?,
            None => 0,
        };
        match self.btb.lookup(kpc) {
            Some(t) if t == ktarget => {}
            found => {
                if found.is_none() {
                    self.bstats.btb_misses += 1;
                } else {
                    self.bstats.btb_wrong_target += 1;
                }
                self.redirect_at =
                    self.redirect_at.max(exec_done + self.cfg.mispredict_penalty + w);
                self.btb.update(kpc, ktarget);
            }
        }
        Ok(())
    }

    pub(crate) fn stats_now(&self) -> SimStats {
        SimStats {
            instructions: self.instructions,
            cycles: self.last_retire.max(self.fetch_cycle),
            il1: self.hier.il1.stats(),
            dl1: self.hier.dl1.stats(),
            l2: self.hier.l2.stats(),
            itlb: self.hier.itlb.stats(),
            dtlb: self.hier.dtlb.stats(),
            dram: self.hier.dram.stats(),
            branch: self.bstats,
            drc: self.drc.as_ref().map(|d| d.stats()),
            drc_walk_cycles: self.drc_walk,
            fetch_stall_cycles: self.fetch_stall,
            load_stall_cycles: self.load_stall,
            redirect_stall_cycles: self.redirect_stall,
            l2_reads_from_l1: self.hier.l2_reads_from_l1,
            exec_extra_cycles: self.exec_extra,
            rerand_epochs: self.rerand_epochs,
            rerand_stall_cycles: self.rerand_stall,
            contention_stall_cycles: self.hier.contention_cycles,
        }
    }

    /// Serialises the engine in field-declaration order (checkpoint
    /// support). The geometry (`width`, `rob_entries`) is written too, so
    /// a restored engine cannot silently run a different window.
    pub(crate) fn save(&self, w: &mut Writer) {
        w.u64(self.ooo.width as u64);
        w.u64(self.ooo.rob_entries as u64);
        self.hier.save(w);
        self.gshare.save(w);
        self.btb.save(w);
        self.ras.save(w);
        let b = &self.bstats;
        w.u64(b.predictions);
        w.u64(b.mispredictions);
        w.u64(b.btb_lookups);
        w.u64(b.btb_misses);
        w.u64(b.btb_wrong_target);
        w.u64(b.ras_predictions);
        w.u64(b.ras_mispredictions);
        w.u64(self.fetch_cycle);
        w.u64(self.fetch_slots as u64);
        w.u64(self.redirect_at);
        match self.window_line {
            Some(line) => {
                w.u8(1);
                w.u32(line);
            }
            None => w.u8(0),
        }
        for r in self.reg_ready {
            w.u64(r);
        }
        w.u64(self.flags_ready);
        w.u64(self.last_store_done);
        w.u64(self.rob.len() as u64);
        for &t in &self.rob {
            w.u64(t);
        }
        w.u64(self.lsq.len() as u64);
        for &t in &self.lsq {
            w.u64(t);
        }
        w.u64(self.commit_cycle);
        w.u64(self.commit_slots as u64);
        w.u64(self.last_retire);
        match &self.drc {
            Some(d) => {
                w.u8(1);
                d.save(w);
            }
            None => w.u8(0),
        }
        match &self.epoch_layout {
            Some(m) => {
                w.u8(1);
                m.save(w);
            }
            None => w.u8(0),
        }
        match &self.epoch_table {
            Some(t) => {
                w.u8(1);
                t.save(w);
            }
            None => w.u8(0),
        }
        w.u64(self.rerand_epochs);
        w.u64(self.rerand_stall);
        w.u64(self.drc_walk);
        w.u64(self.fetch_stall);
        w.u64(self.load_stall);
        w.u64(self.redirect_stall);
        w.u64(self.exec_extra);
        w.u64(self.instructions);
    }

    /// Rebuilds an engine from [`OooEngine::save`] output. `cfg` and
    /// `drc` must match the configuration the saved engine ran under (the
    /// checkpoint envelope enforces this before the bytes get here).
    pub(crate) fn restore(
        cfg: &SimConfig,
        drc: Option<DrcConfig>,
        r: &mut Reader<'_>,
    ) -> Result<OooEngine, WireError> {
        let width = r.u64()?;
        let rob_entries = r.u64()?;
        if width == 0 || width > 1 << 10 || rob_entries > 1 << 20 {
            return Err(WireError::LengthOutOfRange { len: width.max(rob_entries) });
        }
        let ooo = OooConfig { width: width as usize, rob_entries: rob_entries as usize };
        let hier = MemoryHierarchy::restore(cfg, r)?;
        let gshare = Gshare::restore(cfg.gshare, r)?;
        let btb = Btb::restore(cfg.btb, r)?;
        let ras = Ras::restore(r)?;
        let bstats = BranchStats {
            predictions: r.u64()?,
            mispredictions: r.u64()?,
            btb_lookups: r.u64()?,
            btb_misses: r.u64()?,
            btb_wrong_target: r.u64()?,
            ras_predictions: r.u64()?,
            ras_mispredictions: r.u64()?,
        };
        let fetch_cycle = r.u64()?;
        let fetch_slots = r.u64()? as usize;
        let redirect_at = r.u64()?;
        let window_line = match r.u8()? {
            0 => None,
            1 => Some(r.u32()?),
            tag => return Err(WireError::BadTag { tag }),
        };
        let mut reg_ready = [0u64; 16];
        for slot in reg_ready.iter_mut() {
            *slot = r.u64()?;
        }
        let flags_ready = r.u64()?;
        let last_store_done = r.u64()?;
        let n_rob = r.u64()?;
        if n_rob > 1 << 20 {
            return Err(WireError::LengthOutOfRange { len: n_rob });
        }
        let mut rob = VecDeque::with_capacity(n_rob as usize);
        for _ in 0..n_rob {
            rob.push_back(r.u64()?);
        }
        let n_lsq = r.u64()?;
        if n_lsq > 1 << 20 {
            return Err(WireError::LengthOutOfRange { len: n_lsq });
        }
        let mut lsq = VecDeque::with_capacity(n_lsq as usize);
        for _ in 0..n_lsq {
            lsq.push_back(r.u64()?);
        }
        let commit_cycle = r.u64()?;
        let commit_slots = r.u64()? as usize;
        let last_retire = r.u64()?;
        let drc = match (r.u8()?, drc) {
            (0, None) => None,
            (1, Some(cfg)) => Some(Drc::restore(cfg, r)?),
            (tag, _) => return Err(WireError::BadTag { tag }),
        };
        let epoch_layout = match r.u8()? {
            0 => None,
            1 => Some(LayoutMap::restore(r)?),
            tag => return Err(WireError::BadTag { tag }),
        };
        let epoch_table = match r.u8()? {
            0 => None,
            1 => Some(TranslationTable::restore(r)?),
            tag => return Err(WireError::BadTag { tag }),
        };
        Ok(OooEngine {
            cfg: *cfg,
            ooo,
            hier,
            gshare,
            btb,
            ras,
            bstats,
            fetch_cycle,
            fetch_slots,
            redirect_at,
            window_line,
            reg_ready,
            flags_ready,
            last_store_done,
            rob,
            lsq,
            commit_cycle,
            commit_slots,
            last_retire,
            drc,
            epoch_layout,
            epoch_table,
            rerand_epochs: r.u64()?,
            rerand_stall: r.u64()?,
            drc_walk: r.u64()?,
            fetch_stall: r.u64()?,
            load_stall: r.u64()?,
            redirect_stall: r.u64()?,
            exec_extra: r.u64()?,
            instructions: r.u64()?,
        })
    }
}

/// Runs one program on the out-of-order core model.
///
/// # Errors
///
/// Returns [`SimError::Exec`] when the program faults architecturally.
///
/// # Example
///
/// ```
/// use vcfr_isa::{Asm, Reg};
/// use vcfr_sim::{simulate, simulate_ooo, Mode, OooConfig, SimConfig};
///
/// let mut a = Asm::new(0x1000);
/// for i in 0..64 {
///     a.mov_ri(vcfr_isa::ALL_REGS[(i % 8) + 8], i as i64); // independent work
/// }
/// a.halt();
/// let img = a.finish().unwrap();
/// let cfg = SimConfig::default();
/// let scalar = simulate(Mode::Baseline(&img), &cfg, 1_000).unwrap();
/// let wide = simulate_ooo(Mode::Baseline(&img), &cfg, OooConfig::default(), 1_000).unwrap();
/// assert!(wide.stats.ipc() > scalar.stats.ipc());
/// ```
pub fn simulate_ooo(
    mode: Mode<'_>,
    cfg: &SimConfig,
    ooo: OooConfig,
    max_insts: u64,
) -> Result<SimOutput, SimError> {
    let image = mode.image_ref();
    let mut machine = Machine::new(image);
    let drc_cfg = match &mode {
        Mode::Vcfr { drc, .. } => Some(*drc),
        _ => None,
    };
    let mut engine = OooEngine::new(cfg, ooo, drc_cfg);

    let identity = |a: Addr| a;
    let outcome = loop {
        if engine.instructions >= max_insts {
            break RunOutcome {
                output: machine.output().to_vec(),
                steps: machine.steps(),
                stop: machine.stop_reason().unwrap_or(vcfr_isa::StopReason::Halt),
            };
        }
        let Some(info) = machine.step()? else {
            break RunOutcome {
                output: machine.output().to_vec(),
                steps: machine.steps(),
                stop: machine.stop_reason().expect("stopped machine has a reason"),
            };
        };
        match &mode {
            Mode::Baseline(_) => engine.step(&info, info.pc, &identity, None)?,
            Mode::NaiveIlr(rp) => {
                let key = |a: Addr| rp.rand_or_orig(a);
                engine.step(&info, rp.rand_or_orig(info.pc), &key, None)?;
            }
            Mode::Vcfr { program, .. } => {
                engine.step(&info, info.pc, &identity, Some(program))?;
            }
        }
    };

    Ok(SimOutput { stats: engine.stats_now(), outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use vcfr_isa::{AluOp, Asm, Cond, Image, Reg};
    use vcfr_rewriter::{randomize, RandomizeConfig};

    /// Independent parallel work: an OoO core must beat the scalar core.
    fn ilp_workload() -> Image {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 2_000);
        let top = a.here();
        // Eight independent chains per iteration.
        for r in [Reg::Rax, Reg::Rdx, Reg::Rsi, Reg::Rdi, Reg::R8, Reg::R9, Reg::R10, Reg::R11]
        {
            a.alu_ri(AluOp::Add, r, 3);
            a.alu_ri(AluOp::Xor, r, 0x55);
        }
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.halt();
        a.finish().unwrap()
    }

    /// A single serial dependence chain: OoO gains nothing.
    fn serial_workload() -> Image {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 2_000);
        let top = a.here();
        for _ in 0..8 {
            a.alu_ri(AluOp::Add, Reg::Rax, 3);
            a.alu_ri(AluOp::Mul, Reg::Rax, 3);
        }
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.halt();
        a.finish().unwrap()
    }

    /// Data-dependent branches off an LCG: gshare cannot learn them, so
    /// the run is mispredict-heavy.
    fn branchy_workload() -> Image {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rax, 12345);
        a.mov_ri(Reg::Rcx, 2_000);
        let top = a.here();
        a.alu_ri(AluOp::Mul, Reg::Rax, 1103515);
        a.alu_ri(AluOp::Add, Reg::Rax, 12345);
        a.mov_rr(Reg::Rdx, Reg::Rax);
        // Branch on a *high* bit: the low bits of an LCG are short-period
        // and gshare learns them.
        a.alu_ri(AluOp::And, Reg::Rdx, 0x10_0000);
        a.cmp_i(Reg::Rdx, 0);
        let skip = a.label();
        a.jcc(Cond::Eq, skip);
        a.alu_ri(AluOp::Add, Reg::Rsi, 1);
        a.bind(skip);
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn ooo_exploits_ilp() {
        let img = ilp_workload();
        let cfg = SimConfig::default();
        let scalar = simulate(Mode::Baseline(&img), &cfg, 1_000_000).unwrap();
        let wide = simulate_ooo(Mode::Baseline(&img), &cfg, OooConfig::default(), 1_000_000)
            .unwrap();
        assert!(
            wide.stats.ipc() > 1.8 * scalar.stats.ipc(),
            "ooo {} vs scalar {}",
            wide.stats.ipc(),
            scalar.stats.ipc()
        );
        assert!(wide.stats.ipc() <= 4.0 + 1e-9);
    }

    #[test]
    fn serial_chains_cap_ooo_gains() {
        let img = serial_workload();
        let cfg = SimConfig::default();
        let wide = simulate_ooo(Mode::Baseline(&img), &cfg, OooConfig::default(), 1_000_000)
            .unwrap();
        // The mul-latency chain limits IPC well below width.
        assert!(wide.stats.ipc() < 1.5, "ipc {}", wide.stats.ipc());
    }

    #[test]
    fn width_one_ooo_tracks_the_inorder_core() {
        let img = ilp_workload();
        let cfg = SimConfig::default();
        let narrow = simulate_ooo(
            Mode::Baseline(&img),
            &cfg,
            OooConfig { width: 1, rob_entries: 128 },
            1_000_000,
        )
        .unwrap();
        // Width-1 caps at IPC 1 regardless of ILP.
        assert!(narrow.stats.ipc() <= 1.0 + 1e-9);
        assert!(narrow.stats.ipc() > 0.5);
    }

    #[test]
    fn vcfr_overhead_stays_small_on_the_ooo_core() {
        let img = ilp_workload();
        let cfg = SimConfig::default();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let base = simulate_ooo(Mode::Baseline(&img), &cfg, OooConfig::default(), 1_000_000)
            .unwrap();
        let naive =
            simulate_ooo(Mode::NaiveIlr(&rp), &cfg, OooConfig::default(), 1_000_000).unwrap();
        let vcfr = simulate_ooo(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
            &cfg,
            OooConfig::default(),
            1_000_000,
        )
        .unwrap();
        assert_eq!(base.outcome.output, vcfr.outcome.output);
        assert!(vcfr.stats.ipc() > 0.85 * base.stats.ipc());
        assert!(vcfr.stats.ipc() >= naive.stats.ipc());
    }

    #[test]
    fn rob_depth_matters_under_memory_latency() {
        // Pointer-chase-ish loads: a deeper window overlaps more misses.
        let mut a = Asm::new(0x1000);
        let buf = a.data_zeroed(1 << 16);
        a.mov_ri(Reg::Rbx, buf.0 as i64);
        a.mov_ri(Reg::Rcx, 3_000);
        a.mov_ri(Reg::Rdx, 0);
        let top = a.here();
        // Two independent strided loads per iteration.
        a.load_idx(Reg::Rax, Reg::Rbx, Reg::Rdx, 3, 0);
        a.load_idx(Reg::R8, Reg::Rbx, Reg::Rdx, 3, 8 * 1024);
        a.alu_ri(AluOp::Add, Reg::Rdx, 17);
        a.alu_ri(AluOp::And, Reg::Rdx, 0xfff);
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.halt();
        let img = a.finish().unwrap();
        let cfg = SimConfig::default();
        let shallow = simulate_ooo(
            Mode::Baseline(&img),
            &cfg,
            OooConfig { width: 4, rob_entries: 4 },
            1_000_000,
        )
        .unwrap();
        let deep = simulate_ooo(
            Mode::Baseline(&img),
            &cfg,
            OooConfig { width: 4, rob_entries: 256 },
            1_000_000,
        )
        .unwrap();
        assert!(deep.stats.ipc() >= shallow.stats.ipc());
    }

    /// The redirect-drain regression (PR 6's fix, ported): a redirect
    /// landing behind or exactly on the fetch cycle contributes zero
    /// stall — never a wrapped subtraction — and only the cycles past the
    /// fetch point are charged.
    #[test]
    fn redirect_landing_on_or_behind_fetch_adds_no_stall() {
        let cfg = SimConfig::default();
        let mut e = OooEngine::new(&cfg, OooConfig::default(), None);
        e.fetch_cycle = 100;
        e.redirect_at = 90; // stale redirect behind fetch
        e.drain_redirect();
        assert_eq!(e.redirect_stall, 0);
        assert_eq!(e.fetch_cycle, 100);
        e.redirect_at = 100; // landing exactly on the fetch cycle
        e.drain_redirect();
        assert_eq!(e.redirect_stall, 0);
        assert_eq!(e.fetch_cycle, 100);
        e.redirect_at = 130; // a genuine drain charges the gap
        e.drain_redirect();
        assert_eq!(e.redirect_stall, 30);
        assert_eq!(e.fetch_cycle, 130);
    }

    /// Mispredict-heavy runs now report their redirect cycles, and the
    /// front-end floor identity holds: the fetch clock absorbs fetch,
    /// redirect and rerand stalls serially.
    #[test]
    fn mispredicts_charge_redirect_stall_on_the_ooo_core() {
        let img = branchy_workload();
        let cfg = SimConfig::default();
        let out = simulate_ooo(Mode::Baseline(&img), &cfg, OooConfig::default(), 1_000_000)
            .unwrap();
        assert!(out.stats.branch.mispredictions > 100, "{:?}", out.stats.branch);
        assert!(out.stats.redirect_stall_cycles > 0);
        assert!(
            out.stats.cycles
                >= out.stats.fetch_stall_cycles
                    + out.stats.redirect_stall_cycles
                    + out.stats.rerand_stall_cycles,
            "front-end floor violated: {:?}",
            out.stats
        );
    }

    #[test]
    fn rerand_epochs_fire_on_the_ooo_core() {
        let img = ilp_workload();
        let cfg = SimConfig::builder()
            .rerand_epoch(Some(8_000))
            .drc_entries(Some(128))
            .build()
            .unwrap();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let base = simulate_ooo(Mode::Baseline(&img), &cfg, OooConfig::default(), 50_000)
            .unwrap();
        let vcfr = simulate_ooo(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
            &cfg,
            OooConfig::default(),
            50_000,
        )
        .unwrap();
        assert_eq!(base.outcome.output, vcfr.outcome.output, "swaps must stay transparent");
        assert!(vcfr.stats.rerand_epochs >= 3, "{:?}", vcfr.stats.rerand_epochs);
        assert!(vcfr.stats.rerand_stall_cycles > 0);
        assert!(vcfr.stats.cycles > base.stats.cycles, "the pause must cost cycles");
    }

    /// Serialise mid-run, restore, and finish: the restored engine must
    /// produce bit-identical statistics to the uninterrupted run.
    #[test]
    fn save_restore_roundtrip_is_bit_identical() {
        let img = branchy_workload();
        let cfg = SimConfig::default();
        let rp = randomize(&img, &RandomizeConfig::with_seed(3)).unwrap();
        let drc = DrcConfig::direct_mapped(64);
        let split = 5_000u64;

        let run = |resume: bool| {
            let mut machine = Machine::new(&rp.original);
            let mut engine = OooEngine::new(&cfg, OooConfig::default(), Some(drc));
            let identity = |a: Addr| a;
            let mut saved: Option<Vec<u8>> = None;
            while let Some(info) = machine.step().unwrap() {
                engine.step(&info, info.pc, &identity, Some(&rp)).unwrap();
                if engine.instructions == split {
                    const MAGIC: [u8; 8] = *b"OOOTEST1";
                    let mut w = Writer::with_magic(MAGIC);
                    engine.save(&mut w);
                    saved = Some(w.into_bytes());
                    if resume {
                        let bytes = saved.clone().unwrap();
                        let mut r = Reader::with_magic(&bytes, MAGIC).unwrap();
                        engine = OooEngine::restore(&cfg, Some(drc), &mut r).unwrap();
                        assert!(r.is_exhausted(), "trailing bytes after restore");
                    }
                }
            }
            (engine.stats_now(), saved.unwrap())
        };
        let (straight, bytes_a) = run(false);
        let (resumed, bytes_b) = run(true);
        assert_eq!(bytes_a, bytes_b, "save is deterministic");
        assert_eq!(straight, resumed, "resume diverged from the uninterrupted run");
    }

    /// The DRC-less misconfiguration surfaces as a typed error instead of
    /// a panic: stepping with VCFR mediation on an engine built without a
    /// DRC reports [`SimError::MissingDrc`].
    #[test]
    fn vcfr_step_without_a_drc_is_a_typed_error() {
        let mut a = Asm::new(0x1000);
        let f = a.label();
        a.call(f);
        a.halt();
        a.bind(f);
        a.ret();
        let img = a.finish().unwrap();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let mut machine = Machine::new(&rp.original);
        let mut engine = OooEngine::new(&SimConfig::default(), OooConfig::default(), None);
        let identity = |a: Addr| a;
        let mut saw = None;
        while let Some(info) = machine.step().unwrap() {
            if let Err(e) = engine.step(&info, info.pc, &identity, Some(&rp)) {
                saw = Some(e);
                break;
            }
        }
        assert_eq!(saw, Some(SimError::MissingDrc));
    }
}
