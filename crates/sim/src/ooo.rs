//! Out-of-order superscalar extension — the paper's §IX future work
//! ("we will explore and extend the idea to the out-of-order superscalar
//! processor").
//!
//! A trace-driven dataflow model: instructions dispatch in order at up to
//! `width` per cycle into a `rob_entries`-deep window, issue when their
//! register/flag/memory-order dependences are satisfied (execution
//! resources are idealised — a standard limit-study simplification,
//! stated here so the numbers are read correctly), and commit in order at
//! up to `width` per cycle. The front end, memory hierarchy, predictors
//! and the VCFR/DRC mediation layer are the same components the in-order
//! model uses, so the three machines (baseline / naive ILR / VCFR) remain
//! directly comparable.

use crate::config::{DrcBacking, SimConfig};
use crate::hierarchy::MemoryHierarchy;
use crate::predict::{BranchStats, Btb, Gshare, Ras};
use crate::stats::SimStats;
use crate::engine::{Mode, SimError, SimOutput};
use std::collections::VecDeque;
use vcfr_core::{Drc, DrcConfig, OrigAddr, RandAddr};
use vcfr_isa::{Addr, ControlFlow, Machine, Reg, RunOutcome, StepInfo};
use vcfr_rewriter::RandomizedProgram;

/// Geometry of the out-of-order core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OooConfig {
    /// Fetch/dispatch/commit width (instructions per cycle).
    pub width: usize,
    /// Reorder-buffer depth.
    pub rob_entries: usize,
}

impl Default for OooConfig {
    fn default() -> OooConfig {
        OooConfig { width: 4, rob_entries: 128 }
    }
}

/// Pipeline depth between fetch and dispatch.
const DECODE_DEPTH: u64 = 4;
/// Depth between the last execution cycle and retirement.
const COMMIT_DEPTH: u64 = 2;

struct OooEngine<'a> {
    cfg: &'a SimConfig,
    ooo: OooConfig,
    hier: MemoryHierarchy,
    gshare: Gshare,
    btb: Btb,
    ras: Ras,
    bstats: BranchStats,
    // Front end.
    fetch_cycle: u64,
    fetch_slots: usize,
    redirect_at: u64,
    window_line: Option<Addr>,
    // Dataflow state.
    reg_ready: [u64; 16],
    flags_ready: u64,
    last_store_done: u64,
    // In-order retire bookkeeping.
    rob: VecDeque<u64>,
    lsq: VecDeque<u64>,
    commit_cycle: u64,
    commit_slots: usize,
    last_retire: u64,
    // VCFR.
    drc: Option<Drc>,
    drc_walk: u64,
    fetch_stall: u64,
    load_stall: u64,
    exec_extra: u64,
    instructions: u64,
}

impl<'a> OooEngine<'a> {
    fn new(cfg: &'a SimConfig, ooo: OooConfig, drc: Option<DrcConfig>) -> OooEngine<'a> {
        OooEngine {
            cfg,
            ooo,
            hier: MemoryHierarchy::new(cfg),
            gshare: Gshare::new(cfg.gshare),
            btb: Btb::new(cfg.btb),
            ras: Ras::new(cfg.ras_entries),
            bstats: BranchStats::default(),
            fetch_cycle: 0,
            fetch_slots: 0,
            redirect_at: 0,
            window_line: None,
            reg_ready: [0; 16],
            flags_ready: 0,
            last_store_done: 0,
            rob: VecDeque::new(),
            lsq: VecDeque::new(),
            commit_cycle: 0,
            commit_slots: 0,
            last_retire: 0,
            drc: drc.map(Drc::new),
            drc_walk: 0,
            fetch_stall: 0,
            load_stall: 0,
            exec_extra: 0,
            instructions: 0,
        }
    }

    fn walk(&mut self, entry_addr: Addr, now: u64) -> u64 {
        match self.cfg.drc_backing {
            DrcBacking::SharedL2 => self.hier.table_walk(entry_addr, now),
            DrcBacking::Dedicated { latency } => latency,
        }
    }

    fn derand(&mut self, target: Addr, rp: &RandomizedProgram, now: u64) -> u64 {
        let drc = self.drc.as_mut().expect("vcfr has a DRC");
        let rand = rp.rand_or_orig(target);
        match drc.derandomize(RandAddr(rand), &rp.table) {
            Ok(l) if !l.hit => {
                let w = self.walk(l.entry_addr, now);
                self.drc_walk += w;
                w
            }
            _ => 0,
        }
    }

    fn step(
        &mut self,
        info: &StepInfo,
        fetch_pc: Addr,
        key: &impl Fn(Addr) -> Addr,
        vcfr: Option<&RandomizedProgram>,
    ) {
        self.instructions += 1;
        let cfg = self.cfg;

        // ---- fetch (width per cycle, same byte-queue/line model) -------
        if self.redirect_at > self.fetch_cycle {
            self.fetch_cycle = self.redirect_at;
            self.fetch_slots = 0;
        }
        let line_bytes = cfg.il1.line_bytes as Addr;
        let first = fetch_pc & !(line_bytes - 1);
        let last = (fetch_pc + info.len as Addr - 1) & !(line_bytes - 1);
        let mut stall = 0;
        let mut line = first;
        loop {
            if self.window_line != Some(line) {
                stall += self.hier.fetch_line(line, self.fetch_cycle);
                self.window_line = Some(line);
            }
            if line == last {
                break;
            }
            line += line_bytes;
        }
        if stall > 0 {
            self.fetch_cycle += stall;
            self.fetch_slots = 0;
            self.fetch_stall += stall;
        }
        let fetch_done = self.fetch_cycle;
        self.fetch_slots += 1;
        if self.fetch_slots >= self.ooo.width {
            self.fetch_cycle += 1;
            self.fetch_slots = 0;
        }

        // ---- dispatch: in order, ROB-limited -----------------------------
        let mut dispatch = fetch_done + DECODE_DEPTH;
        if self.rob.len() >= self.ooo.rob_entries {
            if let Some(oldest_retire) = self.rob.pop_front() {
                dispatch = dispatch.max(oldest_retire);
            }
        }

        // ---- issue: dataflow ---------------------------------------------
        let mut ready = dispatch;
        for r in info.inst.reads().iter() {
            ready = ready.max(self.reg_ready[r.index()]);
        }
        if info.inst.reads_flags() {
            ready = ready.max(self.flags_ready);
        }
        // Conservative memory ordering: loads wait for the youngest older
        // store, stores serialise behind each other.
        let is_load = info.mem_accesses().any(|a| !a.write);
        let is_store = info.mem_accesses().any(|a| a.write);
        if is_load || is_store {
            ready = ready.max(self.last_store_done);
            // LSQ capacity: a memory op cannot enter until the oldest
            // in-flight one completes when the queue is full.
            if self.lsq.len() >= self.cfg.lsq_entries {
                if let Some(oldest) = self.lsq.pop_front() {
                    ready = ready.max(oldest);
                }
            }
        }

        let extra = crate::engine::exec_extra_cycles(&info.inst);
        self.exec_extra += extra;
        let mut lat = 1 + extra;
        for acc in info.mem_accesses() {
            let l = self.hier.data_access(acc.addr, acc.write, ready);
            self.load_stall += l;
            if !acc.write {
                lat += l;
            }
        }
        let mut exec_done = ready + lat;

        // ---- VCFR mediation ------------------------------------------------
        if let Some(rp) = vcfr {
            match info.control {
                Some(ControlFlow::Call { ret_addr, .. })
                | Some(ControlFlow::IndirectCall { ret_addr, .. }) => {
                    let drc = self.drc.as_mut().expect("vcfr has a DRC");
                    if let Ok(l) = drc.randomize(OrigAddr(ret_addr), &rp.table) {
                        if !l.hit {
                            let w = self.walk(l.entry_addr, ready);
                            self.drc_walk += w;
                        }
                    }
                }
                _ => {}
            }
        }

        // ---- control flow ----------------------------------------------------
        if let Some(cf) = info.control {
            let kpc = key(info.pc);
            match cf {
                ControlFlow::Branch { taken, target } => {
                    self.bstats.predictions += 1;
                    let predicted = self.gshare.predict(kpc);
                    self.gshare.update(kpc, taken);
                    if predicted != taken {
                        self.bstats.mispredictions += 1;
                        let w = match (taken, vcfr) {
                            (true, Some(rp)) => self.derand(target, rp, exec_done),
                            _ => 0,
                        };
                        self.redirect_at =
                            self.redirect_at.max(exec_done + cfg.mispredict_penalty + w);
                    } else if taken {
                        self.taken_lookup(kpc, key(target), target, vcfr, fetch_done, exec_done);
                    }
                }
                ControlFlow::Jump { target } => {
                    self.taken_lookup(kpc, key(target), target, vcfr, fetch_done, exec_done);
                }
                ControlFlow::Call { target, ret_addr } => {
                    self.taken_lookup(kpc, key(target), target, vcfr, fetch_done, exec_done);
                    self.ras.push(key(ret_addr));
                }
                ControlFlow::IndirectCall { target, ret_addr } => {
                    self.indirect_lookup(kpc, key(target), target, vcfr, exec_done);
                    self.ras.push(key(ret_addr));
                }
                ControlFlow::IndirectJump { target } => {
                    self.indirect_lookup(kpc, key(target), target, vcfr, exec_done);
                }
                ControlFlow::Return { target } => {
                    self.bstats.ras_predictions += 1;
                    let w = match vcfr {
                        Some(rp) => self.derand(target, rp, exec_done),
                        None => 0,
                    };
                    match self.ras.pop() {
                        Some(p) if p == key(target) => {}
                        _ => {
                            self.bstats.ras_mispredictions += 1;
                            self.redirect_at =
                                self.redirect_at.max(exec_done + cfg.mispredict_penalty + w);
                        }
                    }
                }
            }
            if cf.taken_target().is_some() {
                self.window_line = None;
            }
            // A resolved transfer pins the dataflow: younger instructions
            // were fetched after the redirect anyway.
            exec_done = exec_done.max(ready + 1);
        }

        // ---- writeback ----------------------------------------------------
        for r in info.inst.writes().iter() {
            // Stack-pointer updates are cheap renames in real cores: they
            // complete at dispatch, not after the memory access.
            let done = if r == Reg::Rsp { ready + 1 } else { exec_done };
            self.reg_ready[r.index()] = self.reg_ready[r.index()].max(done);
        }
        if info.inst.writes_flags() {
            self.flags_ready = self.flags_ready.max(exec_done);
        }
        if is_store {
            self.last_store_done = self.last_store_done.max(exec_done);
        }
        if is_load || is_store {
            self.lsq.push_back(exec_done);
        }

        // ---- in-order commit, width per cycle ------------------------------
        let mut retire = (exec_done + COMMIT_DEPTH).max(self.last_retire);
        if retire > self.commit_cycle {
            self.commit_cycle = retire;
            self.commit_slots = 0;
        }
        self.commit_slots += 1;
        if self.commit_slots >= self.ooo.width {
            self.commit_cycle += 1;
            self.commit_slots = 0;
        }
        retire = retire.max(self.commit_cycle);
        self.last_retire = retire;
        self.rob.push_back(retire);
    }

    fn taken_lookup(
        &mut self,
        kpc: Addr,
        ktarget: Addr,
        target: Addr,
        vcfr: Option<&RandomizedProgram>,
        fetch_done: u64,
        exec_done: u64,
    ) {
        self.bstats.btb_lookups += 1;
        match self.btb.lookup(kpc) {
            Some(t) if t == ktarget => {}
            found => {
                if found.is_none() {
                    self.bstats.btb_misses += 1;
                } else {
                    self.bstats.btb_wrong_target += 1;
                }
                let w = match vcfr {
                    Some(rp) => self.derand(target, rp, exec_done),
                    None => 0,
                };
                self.redirect_at =
                    self.redirect_at.max(fetch_done + self.cfg.btb_miss_penalty + w);
                self.btb.update(kpc, ktarget);
            }
        }
    }

    fn indirect_lookup(
        &mut self,
        kpc: Addr,
        ktarget: Addr,
        target: Addr,
        vcfr: Option<&RandomizedProgram>,
        exec_done: u64,
    ) {
        self.bstats.btb_lookups += 1;
        let w = match vcfr {
            Some(rp) => self.derand(target, rp, exec_done),
            None => 0,
        };
        match self.btb.lookup(kpc) {
            Some(t) if t == ktarget => {}
            found => {
                if found.is_none() {
                    self.bstats.btb_misses += 1;
                } else {
                    self.bstats.btb_wrong_target += 1;
                }
                self.redirect_at =
                    self.redirect_at.max(exec_done + self.cfg.mispredict_penalty + w);
                self.btb.update(kpc, ktarget);
            }
        }
    }

    fn into_stats(self) -> SimStats {
        SimStats {
            instructions: self.instructions,
            cycles: self.last_retire.max(self.fetch_cycle),
            il1: self.hier.il1.stats(),
            dl1: self.hier.dl1.stats(),
            l2: self.hier.l2.stats(),
            itlb: self.hier.itlb.stats(),
            dtlb: self.hier.dtlb.stats(),
            dram: self.hier.dram.stats(),
            branch: self.bstats,
            drc: self.drc.as_ref().map(|d| d.stats()),
            drc_walk_cycles: self.drc_walk,
            fetch_stall_cycles: self.fetch_stall,
            load_stall_cycles: self.load_stall,
            redirect_stall_cycles: 0,
            l2_reads_from_l1: self.hier.l2_reads_from_l1,
            exec_extra_cycles: self.exec_extra,
            rerand_epochs: 0,
            rerand_stall_cycles: 0,
        }
    }
}

/// Runs one program on the out-of-order core model.
///
/// # Errors
///
/// Returns [`SimError::Exec`] when the program faults architecturally.
///
/// # Example
///
/// ```
/// use vcfr_isa::{Asm, Reg};
/// use vcfr_sim::{simulate, simulate_ooo, Mode, OooConfig, SimConfig};
///
/// let mut a = Asm::new(0x1000);
/// for i in 0..64 {
///     a.mov_ri(vcfr_isa::ALL_REGS[(i % 8) + 8], i as i64); // independent work
/// }
/// a.halt();
/// let img = a.finish().unwrap();
/// let cfg = SimConfig::default();
/// let scalar = simulate(Mode::Baseline(&img), &cfg, 1_000).unwrap();
/// let wide = simulate_ooo(Mode::Baseline(&img), &cfg, OooConfig::default(), 1_000).unwrap();
/// assert!(wide.stats.ipc() > scalar.stats.ipc());
/// ```
pub fn simulate_ooo(
    mode: Mode<'_>,
    cfg: &SimConfig,
    ooo: OooConfig,
    max_insts: u64,
) -> Result<SimOutput, SimError> {
    let image = mode.image_ref();
    let mut machine = Machine::new(image);
    let drc_cfg = match &mode {
        Mode::Vcfr { drc, .. } => Some(*drc),
        _ => None,
    };
    let mut engine = OooEngine::new(cfg, ooo, drc_cfg);

    let identity = |a: Addr| a;
    let outcome = loop {
        if engine.instructions >= max_insts {
            break RunOutcome {
                output: machine.output().to_vec(),
                steps: machine.steps(),
                stop: machine.stop_reason().unwrap_or(vcfr_isa::StopReason::Halt),
            };
        }
        let Some(info) = machine.step()? else {
            break RunOutcome {
                output: machine.output().to_vec(),
                steps: machine.steps(),
                stop: machine.stop_reason().expect("stopped machine has a reason"),
            };
        };
        match &mode {
            Mode::Baseline(_) => engine.step(&info, info.pc, &identity, None),
            Mode::NaiveIlr(rp) => {
                let key = |a: Addr| rp.rand_or_orig(a);
                engine.step(&info, rp.rand_or_orig(info.pc), &key, None);
            }
            Mode::Vcfr { program, .. } => {
                engine.step(&info, info.pc, &identity, Some(program));
            }
        }
    };

    Ok(SimOutput { stats: engine.into_stats(), outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use vcfr_isa::{AluOp, Asm, Cond, Image, Reg};
    use vcfr_rewriter::{randomize, RandomizeConfig};

    /// Independent parallel work: an OoO core must beat the scalar core.
    fn ilp_workload() -> Image {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 2_000);
        let top = a.here();
        // Eight independent chains per iteration.
        for r in [Reg::Rax, Reg::Rdx, Reg::Rsi, Reg::Rdi, Reg::R8, Reg::R9, Reg::R10, Reg::R11]
        {
            a.alu_ri(AluOp::Add, r, 3);
            a.alu_ri(AluOp::Xor, r, 0x55);
        }
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.halt();
        a.finish().unwrap()
    }

    /// A single serial dependence chain: OoO gains nothing.
    fn serial_workload() -> Image {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 2_000);
        let top = a.here();
        for _ in 0..8 {
            a.alu_ri(AluOp::Add, Reg::Rax, 3);
            a.alu_ri(AluOp::Mul, Reg::Rax, 3);
        }
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn ooo_exploits_ilp() {
        let img = ilp_workload();
        let cfg = SimConfig::default();
        let scalar = simulate(Mode::Baseline(&img), &cfg, 1_000_000).unwrap();
        let wide = simulate_ooo(Mode::Baseline(&img), &cfg, OooConfig::default(), 1_000_000)
            .unwrap();
        assert!(
            wide.stats.ipc() > 1.8 * scalar.stats.ipc(),
            "ooo {} vs scalar {}",
            wide.stats.ipc(),
            scalar.stats.ipc()
        );
        assert!(wide.stats.ipc() <= 4.0 + 1e-9);
    }

    #[test]
    fn serial_chains_cap_ooo_gains() {
        let img = serial_workload();
        let cfg = SimConfig::default();
        let wide = simulate_ooo(Mode::Baseline(&img), &cfg, OooConfig::default(), 1_000_000)
            .unwrap();
        // The mul-latency chain limits IPC well below width.
        assert!(wide.stats.ipc() < 1.5, "ipc {}", wide.stats.ipc());
    }

    #[test]
    fn width_one_ooo_tracks_the_inorder_core() {
        let img = ilp_workload();
        let cfg = SimConfig::default();
        let narrow = simulate_ooo(
            Mode::Baseline(&img),
            &cfg,
            OooConfig { width: 1, rob_entries: 128 },
            1_000_000,
        )
        .unwrap();
        // Width-1 caps at IPC 1 regardless of ILP.
        assert!(narrow.stats.ipc() <= 1.0 + 1e-9);
        assert!(narrow.stats.ipc() > 0.5);
    }

    #[test]
    fn vcfr_overhead_stays_small_on_the_ooo_core() {
        let img = ilp_workload();
        let cfg = SimConfig::default();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let base = simulate_ooo(Mode::Baseline(&img), &cfg, OooConfig::default(), 1_000_000)
            .unwrap();
        let naive =
            simulate_ooo(Mode::NaiveIlr(&rp), &cfg, OooConfig::default(), 1_000_000).unwrap();
        let vcfr = simulate_ooo(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
            &cfg,
            OooConfig::default(),
            1_000_000,
        )
        .unwrap();
        assert_eq!(base.outcome.output, vcfr.outcome.output);
        assert!(vcfr.stats.ipc() > 0.85 * base.stats.ipc());
        assert!(vcfr.stats.ipc() >= naive.stats.ipc());
    }

    #[test]
    fn rob_depth_matters_under_memory_latency() {
        // Pointer-chase-ish loads: a deeper window overlaps more misses.
        let mut a = Asm::new(0x1000);
        let buf = a.data_zeroed(1 << 16);
        a.mov_ri(Reg::Rbx, buf.0 as i64);
        a.mov_ri(Reg::Rcx, 3_000);
        a.mov_ri(Reg::Rdx, 0);
        let top = a.here();
        // Two independent strided loads per iteration.
        a.load_idx(Reg::Rax, Reg::Rbx, Reg::Rdx, 3, 0);
        a.load_idx(Reg::R8, Reg::Rbx, Reg::Rdx, 3, 8 * 1024);
        a.alu_ri(AluOp::Add, Reg::Rdx, 17);
        a.alu_ri(AluOp::And, Reg::Rdx, 0xfff);
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.halt();
        let img = a.finish().unwrap();
        let cfg = SimConfig::default();
        let shallow = simulate_ooo(
            Mode::Baseline(&img),
            &cfg,
            OooConfig { width: 4, rob_entries: 4 },
            1_000_000,
        )
        .unwrap();
        let deep = simulate_ooo(
            Mode::Baseline(&img),
            &cfg,
            OooConfig { width: 4, rob_entries: 256 },
            1_000_000,
        )
        .unwrap();
        assert!(deep.stats.ipc() >= shallow.stats.ipc());
    }
}
