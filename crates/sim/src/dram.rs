//! DDR-style main-memory timing: per-bank row buffers with an open-page
//! policy, activate/CAS/precharge latencies and periodic refresh — the
//! behaviour DRAMSim2 contributes to the paper's simulation stack.

use crate::config::DramConfig;
use vcfr_isa::wire::{Reader, WireError, Writer};
use vcfr_isa::Addr;

/// Access counters of the [`Dram`] model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit an open row (CAS only).
    pub row_hits: u64,
    /// Accesses to an idle bank (activate + CAS).
    pub row_misses: u64,
    /// Accesses that had to close a conflicting open row
    /// (precharge + activate + CAS).
    pub row_conflicts: u64,
    /// Accesses delayed by a refresh window.
    pub refresh_delays: u64,
}

impl DramStats {
    /// Row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// The main-memory timing model.
///
/// # Example
///
/// ```
/// use vcfr_sim::{Dram, DramConfig};
/// let mut d = Dram::new(DramConfig::default());
/// let first = d.access(0x0, 0);          // activate + CAS
/// let second = d.access(0x40, first);    // same row: CAS only
/// assert!(second - first < first);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    stats: DramStats,
}

impl Dram {
    /// Creates an idle memory.
    ///
    /// # Panics
    ///
    /// Panics when the bank count is not a power of two.
    pub fn new(cfg: DramConfig) -> Dram {
        assert!(cfg.banks.is_power_of_two(), "bank count must be a power of two");
        Dram { cfg, banks: vec![Bank::default(); cfg.banks], stats: DramStats::default() }
    }

    /// Counters so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Clears the counters (keeps bank state).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Serialises the bank state and counters (checkpoint support).
    pub fn save(&self, w: &mut Writer) {
        for bank in &self.banks {
            match bank.open_row {
                Some(row) => {
                    w.u8(1);
                    w.u64(row);
                }
                None => {
                    w.u8(0);
                    w.u64(0);
                }
            }
            w.u64(bank.busy_until);
        }
        w.u64(self.stats.accesses);
        w.u64(self.stats.row_hits);
        w.u64(self.stats.row_misses);
        w.u64(self.stats.row_conflicts);
        w.u64(self.stats.refresh_delays);
    }

    /// Rebuilds a memory from [`Dram::save`] output; the caller supplies
    /// the same `cfg` the saved model was built with.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated input or a malformed open-row tag.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` itself is invalid (see [`Dram::new`]).
    pub fn restore(cfg: DramConfig, r: &mut Reader<'_>) -> Result<Dram, WireError> {
        let mut d = Dram::new(cfg);
        for bank in &mut d.banks {
            let tag = r.u8()?;
            if tag > 1 {
                return Err(WireError::BadTag { tag });
            }
            let row = r.u64()?;
            bank.open_row = (tag == 1).then_some(row);
            bank.busy_until = r.u64()?;
        }
        d.stats.accesses = r.u64()?;
        d.stats.row_hits = r.u64()?;
        d.stats.row_misses = r.u64()?;
        d.stats.row_conflicts = r.u64()?;
        d.stats.refresh_delays = r.u64()?;
        Ok(d)
    }

    fn map(&self, addr: Addr) -> (usize, u64) {
        // Row-interleaved bank mapping: consecutive rows go to
        // consecutive banks, so streaming accesses rotate banks while
        // staying row-local within each.
        let row_global = addr as u64 / self.cfg.row_bytes as u64;
        let bank = (row_global as usize) & (self.cfg.banks - 1);
        let row = row_global / self.cfg.banks as u64;
        (bank, row)
    }

    /// Performs one access beginning at absolute cycle `now`; returns the
    /// absolute cycle at which the data is available.
    pub fn access(&mut self, addr: Addr, now: u64) -> u64 {
        self.stats.accesses += 1;
        let (bank_idx, row) = self.map(addr);

        // Refresh: all banks unavailable for t_rfc every t_refi cycles.
        let mut start = now;
        let refi_phase = now % self.cfg.t_refi;
        if refi_phase < self.cfg.t_rfc {
            start = now + (self.cfg.t_rfc - refi_phase);
            self.stats.refresh_delays += 1;
        }

        let bank = &mut self.banks[bank_idx];
        start = start.max(bank.busy_until);

        let service = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                self.cfg.t_cas
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
            }
            None => {
                self.stats.row_misses += 1;
                self.cfg.t_rcd + self.cfg.t_cas
            }
        };
        bank.open_row = Some(row);
        bank.busy_until = start + service;
        bank.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig { t_refi: 1_000_000, ..DramConfig::default() })
    }

    #[test]
    fn open_page_rewards_locality() {
        let mut d = dram();
        let cfg = DramConfig::default();
        // Start past the initial refresh window (phase > t_rfc).
        let t1 = d.access(0x0000, 1000);
        assert_eq!(t1, 1000 + cfg.t_rcd + cfg.t_cas);
        let t2 = d.access(0x0040, t1);
        assert_eq!(t2, t1 + cfg.t_cas); // row hit
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_costs_precharge() {
        let mut d = dram();
        let cfg = DramConfig::default();
        let row_span = (cfg.row_bytes * cfg.banks) as Addr; // same bank, next row
        let t1 = d.access(0x0000, 0);
        let t2 = d.access(row_span, t1);
        assert_eq!(t2 - t1, cfg.t_rp + cfg.t_rcd + cfg.t_cas);
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn banks_serve_independently() {
        let mut d = dram();
        let cfg = DramConfig::default();
        // Different banks: both start immediately at 0 + activate.
        let t1 = d.access(0x0000, 0);
        let t2 = d.access(cfg.row_bytes as Addr, 0);
        assert_eq!(t1, t2);
    }

    #[test]
    fn busy_bank_queues() {
        let mut d = dram();
        let t1 = d.access(0x0000, 0);
        // Next access to the same bank issued earlier must wait.
        let t2 = d.access(0x0040, 0);
        assert!(t2 > t1 || t2 >= t1);
        assert!(t2 >= t1);
    }

    #[test]
    fn refresh_window_delays() {
        let cfg = DramConfig { t_refi: 1000, t_rfc: 100, ..DramConfig::default() };
        let mut d = Dram::new(cfg);
        let t = d.access(0x0, 2010); // phase 10 < t_rfc
        assert!(t >= 2100 + cfg.t_rcd + cfg.t_cas);
        assert_eq!(d.stats().refresh_delays, 1);
    }

    #[test]
    fn save_restore_replays_identically() {
        use vcfr_isa::wire::{Reader, Writer};
        let mut d = dram();
        let mut now = 0;
        for i in 0..5 {
            now = d.access(i * 64, now);
        }
        let mut w = Writer::with_magic(*b"VCFRTEST");
        d.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        let mut back = Dram::restore(DramConfig { t_refi: 1_000_000, ..DramConfig::default() }, &mut r)
            .unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.stats(), d.stats());
        // Same row-buffer and bank-timing decisions from here on.
        for addr in [0x0u32, 0x4000, 0x40, 0x8000] {
            assert_eq!(back.access(addr, now), d.access(addr, now), "addr {addr:#x}");
        }
        assert_eq!(back.stats(), d.stats());
    }

    #[test]
    fn hit_rate_reporting() {
        let mut d = dram();
        let mut now = 0;
        for i in 0..10 {
            now = d.access(i * 64, now);
        }
        assert!(d.stats().row_hit_rate() > 0.8);
    }
}
