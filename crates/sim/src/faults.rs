//! Deterministic fault injection for the dependability campaign (§V).
//!
//! The paper's title promises *dependability* as well as security: the
//! mediation layer (DRC + in-memory translation tables + stack bitmap)
//! is exactly the hardware that notices when control-flow state is
//! corrupted. This module models seeded, scheduled transient and sticky
//! bit flips in that state and classifies how each one resolves:
//!
//! * **parity scrub** — DRC entries and table slots carry parity; a flip
//!   in a valid entry is detected on the next probe and the entry
//!   refills from memory (or, for a stuck table slot, triggers an
//!   emergency re-randomization);
//! * **translation fault** — a flipped randomized PC (or a clobbered
//!   stack-bitmap mark) almost never lands on another valid randomized
//!   address, so the de-randomization rejects it (the same anti-ROP
//!   check that stops an attacker's absolute address);
//! * **visibility fault** — a flipped un-randomized PC that wanders into
//!   a table page trips the TLB page-visibility bit;
//! * **decode failure** — a flipped un-randomized PC outside the text
//!   segment fails to fetch/decode;
//! * **silent** — the flip produces state that passes every check, the
//!   dangerous residue the campaign quantifies;
//! * **masked** — the flip lands in dead state (an invalid DRC entry, an
//!   idle bitmap) and has no architectural effect.
//!
//! Injection is *counterfactual*: outcomes are classified against the
//! live structures at the injection point, recovery costs are charged to
//! the pipeline, but the golden architectural run is never corrupted —
//! so a faulted run stays deterministic and its timing stays auditable.

use std::fmt;

/// Where an injected bit flip lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// A DRC lookup-buffer entry.
    DrcEntry,
    /// An in-memory translation-table slot.
    TableSlot,
    /// The randomized program counter (RPC).
    Rpc,
    /// The un-randomized program counter (UPC, the fetch address).
    Upc,
    /// A stack-bitmap word (marked-slot state).
    StackBitmap,
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultTarget::DrcEntry => "drc-entry",
            FaultTarget::TableSlot => "table-slot",
            FaultTarget::Rpc => "rpc",
            FaultTarget::Upc => "upc",
            FaultTarget::StackBitmap => "stack-bitmap",
        })
    }
}

/// Whether the flip persists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPersistence {
    /// A one-shot soft error.
    Transient,
    /// A stuck-at fault that keeps re-asserting.
    Sticky,
}

/// What the engine does with a *sticky* fault in the in-memory tables —
/// the one corruption that cannot be scrubbed by a refill.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ContainmentPolicy {
    /// Re-randomize: rebuild the tables at a fresh layout, paying the
    /// epoch-swap cycle cost (the paper's §V-C mechanism doubling as a
    /// repair action).
    #[default]
    Recover,
    /// Halt the machine with a typed [`crate::SimError::Fault`].
    Halt,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Committed-instruction count at which the flip is injected.
    pub at_inst: u64,
    /// Where it lands.
    pub target: FaultTarget,
    /// Which bit flips (0..32 for address-valued targets).
    pub bit: u32,
    /// Target-specific selector: DRC entry index, table-slot index, or
    /// bitmap word — reduced modulo the structure's size at injection.
    pub lane: u64,
    /// One-shot or stuck-at.
    pub persistence: FaultPersistence,
}

/// A seeded campaign: a schedule of faults plus the containment policy.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults ordered by `at_inst`.
    pub faults: Vec<ScheduledFault>,
    /// What to do with sticky table corruption.
    pub policy: ContainmentPolicy,
}

/// The splitmix64 PRNG step — small, seedable, and good enough to spread
/// a campaign across targets and injection points.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults injected).
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// Generates a deterministic plan of `count` faults spread uniformly
    /// over the first `window` instructions. The same `(seed, count,
    /// window)` always yields the same plan, independent of host or
    /// thread count.
    pub fn generate(seed: u64, count: usize, window: u64) -> FaultPlan {
        let mut state = seed ^ 0xd5f1_7054_9c39_a1b7;
        let window = window.max(1);
        let mut faults: Vec<ScheduledFault> = (0..count)
            .map(|_| {
                let r = splitmix64(&mut state);
                let target = match r % 5 {
                    0 => FaultTarget::DrcEntry,
                    1 => FaultTarget::TableSlot,
                    2 => FaultTarget::Rpc,
                    3 => FaultTarget::Upc,
                    _ => FaultTarget::StackBitmap,
                };
                let persistence = if splitmix64(&mut state).is_multiple_of(4) {
                    FaultPersistence::Sticky
                } else {
                    FaultPersistence::Transient
                };
                ScheduledFault {
                    at_inst: 1 + splitmix64(&mut state) % window,
                    target,
                    bit: (splitmix64(&mut state) % 32) as u32,
                    lane: splitmix64(&mut state),
                    persistence,
                }
            })
            .collect();
        faults.sort_by_key(|f| f.at_inst);
        FaultPlan { faults, policy: ContainmentPolicy::Recover }
    }
}

/// How one injected fault resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Detected by entry parity; the structure scrubbed itself and the
    /// state refills from memory.
    DetectedParityScrub,
    /// Detected because the corrupted randomized address failed
    /// de-randomization (prohibited or unmapped).
    DetectedTranslationFault,
    /// Detected by the TLB page-visibility bit.
    DetectedVisibilityFault,
    /// Detected because the corrupted fetch address left the text
    /// segment and failed to decode.
    DetectedDecodeFailure,
    /// Undetected and architecturally consequential: the flip produced
    /// state that passes every check.
    Silent,
    /// Landed in dead state; no architectural effect.
    Masked,
    /// A sticky table fault contained by the policy (emergency
    /// re-randomization or halt).
    Contained,
}

impl FaultOutcome {
    /// Whether the mediation layer noticed the fault.
    pub fn detected(&self) -> bool {
        matches!(
            self,
            FaultOutcome::DetectedParityScrub
                | FaultOutcome::DetectedTranslationFault
                | FaultOutcome::DetectedVisibilityFault
                | FaultOutcome::DetectedDecodeFailure
                | FaultOutcome::Contained
        )
    }
}

/// One injected fault and its resolution (the campaign's raw rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Instruction count at injection.
    pub at_inst: u64,
    /// Where it landed.
    pub target: FaultTarget,
    /// One-shot or stuck-at.
    pub persistence: FaultPersistence,
    /// How it resolved.
    pub outcome: FaultOutcome,
}

/// Aggregate counters of one faulted run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults injected.
    pub injected: u64,
    /// Detected by parity scrub (DRC entries, table slots).
    pub detected_parity: u64,
    /// Detected as de-randomization faults.
    pub detected_translation: u64,
    /// Detected by the page-visibility bit.
    pub detected_visibility: u64,
    /// Detected as decode failures outside the text segment.
    pub detected_decode: u64,
    /// Sticky faults contained (emergency re-randomization or halt).
    pub contained: u64,
    /// Undetected, architecturally consequential flips.
    pub silent: u64,
    /// Flips landing in dead state.
    pub masked: u64,
    /// Emergency re-randomizations triggered by sticky table faults.
    pub emergency_rerands: u64,
}

impl FaultStats {
    /// Faults the mediation layer noticed.
    pub fn detected(&self) -> u64 {
        self.detected_parity
            + self.detected_translation
            + self.detected_visibility
            + self.detected_decode
            + self.contained
    }

    /// Detection coverage over *consequential* faults (masked flips are
    /// excluded: they never mattered). 1.0 on an idle run.
    pub fn coverage(&self) -> f64 {
        let consequential = self.detected() + self.silent;
        if consequential == 0 {
            1.0
        } else {
            self.detected() as f64 / consequential as f64
        }
    }

    /// Folds one record into the counters.
    pub fn record(&mut self, outcome: FaultOutcome) {
        self.injected += 1;
        match outcome {
            FaultOutcome::DetectedParityScrub => self.detected_parity += 1,
            FaultOutcome::DetectedTranslationFault => self.detected_translation += 1,
            FaultOutcome::DetectedVisibilityFault => self.detected_visibility += 1,
            FaultOutcome::DetectedDecodeFailure => self.detected_decode += 1,
            FaultOutcome::Contained => self.contained += 1,
            FaultOutcome::Silent => self.silent += 1,
            FaultOutcome::Masked => self.masked += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_sorted() {
        let a = FaultPlan::generate(2015, 64, 100_000);
        let b = FaultPlan::generate(2015, 64, 100_000);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 64);
        assert!(a.faults.windows(2).all(|w| w[0].at_inst <= w[1].at_inst));
        assert!(a.faults.iter().all(|f| f.at_inst >= 1 && f.at_inst <= 100_000));
        // A different seed reshuffles the schedule.
        let c = FaultPlan::generate(2016, 64, 100_000);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_plans_cover_every_target() {
        let p = FaultPlan::generate(7, 200, 1_000);
        for t in [
            FaultTarget::DrcEntry,
            FaultTarget::TableSlot,
            FaultTarget::Rpc,
            FaultTarget::Upc,
            FaultTarget::StackBitmap,
        ] {
            assert!(p.faults.iter().any(|f| f.target == t), "missing {t}");
        }
        assert!(p.faults.iter().any(|f| f.persistence == FaultPersistence::Sticky));
        assert!(p.faults.iter().any(|f| f.persistence == FaultPersistence::Transient));
    }

    #[test]
    fn stats_fold_and_coverage() {
        let mut s = FaultStats::default();
        s.record(FaultOutcome::DetectedParityScrub);
        s.record(FaultOutcome::DetectedTranslationFault);
        s.record(FaultOutcome::Silent);
        s.record(FaultOutcome::Masked);
        assert_eq!(s.injected, 4);
        assert_eq!(s.detected(), 2);
        assert!((s.coverage() - 2.0 / 3.0).abs() < 1e-12, "masked flips are not consequential");
        assert_eq!(FaultStats::default().coverage(), 1.0);
    }

    #[test]
    fn outcome_detected_predicate() {
        assert!(FaultOutcome::DetectedParityScrub.detected());
        assert!(FaultOutcome::Contained.detected());
        assert!(!FaultOutcome::Silent.detected());
        assert!(!FaultOutcome::Masked.detected());
    }

    #[test]
    fn window_of_zero_clamps() {
        let p = FaultPlan::generate(1, 8, 0);
        assert!(p.faults.iter().all(|f| f.at_inst == 1));
    }
}
