//! Fully-associative translation lookaside buffers with the paper's
//! page-visibility extension.
//!
//! The paper hides the randomization tables (and the stack bitmap) from
//! user space by adding a visibility bit to each TLB entry; pages holding
//! the tables are invisible to user-mode instructions and only reachable
//! by the DRC fill hardware.
//!
//! The TLB stores its residents in flat parallel arrays (tag and LRU
//! tick) fronted by an open-addressed page→slot index and a
//! most-recently-used hint: the common same-page-again case is one
//! comparison, any other hit is a couple of probes, and the LRU victim
//! scan only runs on capacity misses.

use crate::flatmap::FlatMap;
use vcfr_isa::Addr;

const PAGE_SHIFT: u32 = 12;

/// TLB counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups.
    pub accesses: u64,
    /// Misses (page walks).
    pub misses: u64,
    /// User-mode accesses rejected because the page is invisible.
    pub visibility_faults: u64,
}

impl TlbStats {
    /// Miss rate (0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A fully-associative, LRU TLB.
///
/// # Example
///
/// ```
/// use vcfr_sim::Tlb;
/// let mut t = Tlb::new(64);
/// assert!(!t.access(0x1000, true));  // cold miss
/// assert!(t.access(0x1fff, true));   // same page hits
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: usize,
    /// Resident page numbers; parallel to `ticks`.
    pages: Vec<Addr>,
    /// Last-use time of each resident page.
    ticks: Vec<u64>,
    /// Page number → slot in `pages`/`ticks`.
    index: FlatMap,
    /// Index of the most recently hit entry (fast path).
    mru: usize,
    /// Sorted page numbers with the visibility bit cleared.
    invisible: Vec<Addr>,
    stats: TlbStats,
    tick: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` fully-associative entries.
    ///
    /// # Panics
    ///
    /// Panics when `entries` is zero.
    pub fn new(entries: usize) -> Tlb {
        assert!(entries > 0, "TLB needs at least one entry");
        Tlb {
            entries,
            pages: Vec::with_capacity(entries),
            ticks: Vec::with_capacity(entries),
            index: FlatMap::new(),
            mru: 0,
            invisible: Vec::new(),
            stats: TlbStats::default(),
            tick: 0,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Clears counters (keeps contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Marks the page containing `addr` invisible to user-mode
    /// instructions (the paper's page-visibility bit, cleared).
    pub fn set_invisible(&mut self, addr: Addr) {
        let page = addr >> PAGE_SHIFT;
        if let Err(at) = self.invisible.binary_search(&page) {
            self.invisible.insert(at, page);
        }
    }

    /// Whether a *user-mode* access to `addr` is architecturally
    /// permitted. Hardware table walks ignore this.
    ///
    /// This is the pure query — speculative or repeated checks do not
    /// touch the counters. An access that actually *takes* the fault is
    /// recorded with [`Tlb::record_visibility_fault`] (or in one step via
    /// [`Tlb::check_user_access`]).
    pub fn user_visible(&self, addr: Addr) -> bool {
        self.invisible.is_empty()
            || self.invisible.binary_search(&(addr >> PAGE_SHIFT)).is_err()
    }

    /// Counts one architectural visibility fault (a user-mode access that
    /// reached an invisible page and trapped).
    pub fn record_visibility_fault(&mut self) {
        self.stats.visibility_faults += 1;
    }

    /// A committed user-mode permission check: returns the visibility
    /// verdict and records a fault when the access is blocked.
    pub fn check_user_access(&mut self, addr: Addr) -> bool {
        let visible = self.user_visible(addr);
        if !visible {
            self.record_visibility_fault();
        }
        visible
    }

    /// Looks up the page of `addr`; returns `true` on a hit. A miss
    /// installs the translation (evicting the LRU entry when full).
    /// `user` distinguishes user-mode accesses for the stats only.
    pub fn access(&mut self, addr: Addr, _user: bool) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let page = addr >> PAGE_SHIFT;
        if let Some(&hit) = self.pages.get(self.mru) {
            if hit == page {
                self.ticks[self.mru] = self.tick;
                return true;
            }
        }
        if let Some(at) = self.index.get(page) {
            let at = at as usize;
            self.ticks[at] = self.tick;
            self.mru = at;
            return true;
        }
        self.stats.misses += 1;
        if self.pages.len() >= self.entries {
            // Evict the least recently used entry (ticks are unique, so
            // the victim is deterministic).
            let victim = self
                .ticks
                .iter()
                .enumerate()
                .min_by_key(|&(_, &t)| t)
                .map(|(i, _)| i)
                .expect("non-empty TLB");
            self.index.remove(self.pages[victim]);
            self.index.insert(page, victim as u32);
            self.pages[victim] = page;
            self.ticks[victim] = self.tick;
            self.mru = victim;
        } else {
            self.mru = self.pages.len();
            self.index.insert(page, self.mru as u32);
            self.pages.push(page);
            self.ticks.push(self.tick);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1000, true));
        assert!(t.access(0x1abc, true));
        assert!(!t.access(0x2000, true));
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut t = Tlb::new(2);
        t.access(0x1000, true);
        t.access(0x2000, true);
        t.access(0x1000, true); // refresh page 1
        t.access(0x3000, true); // evicts page 2
        assert!(t.access(0x1000, true));
        assert!(!t.access(0x2000, true));
    }

    #[test]
    fn visibility_bit_blocks_user_access() {
        let mut t = Tlb::new(4);
        t.set_invisible(0x4000_0000);
        assert!(!t.check_user_access(0x4000_0123));
        assert!(t.check_user_access(0x1000));
        assert_eq!(t.stats().visibility_faults, 1);
    }

    #[test]
    fn visibility_query_is_pure() {
        // Regression: `user_visible` used to bump `visibility_faults` on
        // every blocked query, so speculative or repeated checks inflated
        // the counter. The query is now side-effect free; only an access
        // that takes the fault records one.
        let mut t = Tlb::new(4);
        t.set_invisible(0x4000_0000);
        for _ in 0..10 {
            assert!(!t.user_visible(0x4000_0123));
        }
        assert_eq!(t.stats().visibility_faults, 0, "queries alone never count");
        assert!(!t.check_user_access(0x4000_0123));
        assert!(!t.check_user_access(0x4000_0ffc));
        assert_eq!(t.stats().visibility_faults, 2, "one fault per committed access");
    }

    #[test]
    fn miss_rate() {
        let mut t = Tlb::new(8);
        t.access(0x1000, true);
        t.access(0x1100, true);
        t.access(0x1200, true);
        t.access(0x2000, true);
        assert!((t.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interleaved_pages_defeat_the_mru_hint_but_still_hit() {
        let mut t = Tlb::new(4);
        t.access(0x1000, true);
        t.access(0x2000, true);
        for _ in 0..10 {
            assert!(t.access(0x1000, true));
            assert!(t.access(0x2000, true));
        }
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn duplicate_set_invisible_is_idempotent() {
        let mut t = Tlb::new(4);
        t.set_invisible(0x5000);
        t.set_invisible(0x5fff); // same page
        assert!(!t.check_user_access(0x5800));
        assert_eq!(t.stats().visibility_faults, 1);
    }
}
