//! Fully-associative translation lookaside buffers with the paper's
//! page-visibility extension.
//!
//! The paper hides the randomization tables (and the stack bitmap) from
//! user space by adding a visibility bit to each TLB entry; pages holding
//! the tables are invisible to user-mode instructions and only reachable
//! by the DRC fill hardware.
//!
//! The TLB stores its residents in flat parallel arrays (tag and LRU
//! tick) fronted by an open-addressed page→slot index and a
//! most-recently-used hint: the common same-page-again case is one
//! comparison, any other hit is a couple of probes, and the LRU victim
//! scan only runs on capacity misses.

use crate::flatmap::FlatMap;
use vcfr_isa::wire::{Reader, WireError, Writer};
use vcfr_isa::Addr;

const PAGE_SHIFT: u32 = 12;

/// TLB counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups.
    pub accesses: u64,
    /// Misses (page walks).
    pub misses: u64,
    /// User-mode accesses rejected because the page is invisible.
    pub visibility_faults: u64,
}

impl TlbStats {
    /// Miss rate (0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A fully-associative, LRU TLB.
///
/// # Example
///
/// ```
/// use vcfr_sim::Tlb;
/// let mut t = Tlb::new(64);
/// assert!(!t.access(0x1000, true));  // cold miss
/// assert!(t.access(0x1fff, true));   // same page hits
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: usize,
    /// Resident page numbers; parallel to `ticks`.
    pages: Vec<Addr>,
    /// Last-use time of each resident page.
    ticks: Vec<u64>,
    /// Page number → slot in `pages`/`ticks`.
    index: FlatMap,
    /// Index of the most recently hit entry (fast path).
    mru: usize,
    /// Sorted page numbers with the visibility bit cleared.
    invisible: Vec<Addr>,
    stats: TlbStats,
    tick: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` fully-associative entries.
    ///
    /// # Panics
    ///
    /// Panics when `entries` is zero.
    pub fn new(entries: usize) -> Tlb {
        assert!(entries > 0, "TLB needs at least one entry");
        Tlb {
            entries,
            pages: Vec::with_capacity(entries),
            ticks: Vec::with_capacity(entries),
            index: FlatMap::new(),
            mru: 0,
            invisible: Vec::new(),
            stats: TlbStats::default(),
            tick: 0,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Clears counters (keeps contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Marks the page containing `addr` invisible to user-mode
    /// instructions (the paper's page-visibility bit, cleared).
    pub fn set_invisible(&mut self, addr: Addr) {
        let page = addr >> PAGE_SHIFT;
        if let Err(at) = self.invisible.binary_search(&page) {
            self.invisible.insert(at, page);
        }
    }

    /// Whether a *user-mode* access to `addr` is architecturally
    /// permitted. Hardware table walks ignore this.
    ///
    /// This is the pure query — speculative or repeated checks do not
    /// touch the counters. An access that actually *takes* the fault is
    /// recorded with [`Tlb::record_visibility_fault`] (or in one step via
    /// [`Tlb::check_user_access`]).
    pub fn user_visible(&self, addr: Addr) -> bool {
        self.invisible.is_empty()
            || self.invisible.binary_search(&(addr >> PAGE_SHIFT)).is_err()
    }

    /// Counts one architectural visibility fault (a user-mode access that
    /// reached an invisible page and trapped).
    pub fn record_visibility_fault(&mut self) {
        self.stats.visibility_faults += 1;
    }

    /// A committed user-mode permission check: returns the visibility
    /// verdict and records a fault when the access is blocked.
    pub fn check_user_access(&mut self, addr: Addr) -> bool {
        let visible = self.user_visible(addr);
        if !visible {
            self.record_visibility_fault();
        }
        visible
    }

    /// Serialises the full TLB state (checkpoint support): residents,
    /// per-entry LRU ticks, the MRU hint, the page→slot index (raw slot
    /// layout), the invisible-page set and the counters.
    pub fn save(&self, w: &mut Writer) {
        w.u64(self.entries as u64);
        w.u64(self.pages.len() as u64);
        for p in &self.pages {
            w.u32(*p);
        }
        for t in &self.ticks {
            w.u64(*t);
        }
        self.index.save(w);
        w.u64(self.mru as u64);
        w.u64(self.invisible.len() as u64);
        for p in &self.invisible {
            w.u32(*p);
        }
        w.u64(self.stats.accesses);
        w.u64(self.stats.misses);
        w.u64(self.stats.visibility_faults);
        w.u64(self.tick);
    }

    /// Rebuilds a TLB from [`Tlb::save`] output.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated input or inconsistent sizes (more
    /// residents than entries, an out-of-range MRU hint).
    pub fn restore(r: &mut Reader<'_>) -> Result<Tlb, WireError> {
        let entries = r.u64()?;
        if entries == 0 || entries > 1 << 24 {
            return Err(WireError::LengthOutOfRange { len: entries });
        }
        let live = r.u64()?;
        if live > entries {
            return Err(WireError::LengthOutOfRange { len: live });
        }
        let mut tlb = Tlb::new(entries as usize);
        for _ in 0..live {
            tlb.pages.push(r.u32()?);
        }
        for _ in 0..live {
            tlb.ticks.push(r.u64()?);
        }
        tlb.index = FlatMap::restore(r)?;
        let mru = r.u64()?;
        if mru > entries {
            return Err(WireError::LengthOutOfRange { len: mru });
        }
        tlb.mru = mru as usize;
        let n_invisible = r.u64()?;
        if n_invisible > 1 << 24 {
            return Err(WireError::LengthOutOfRange { len: n_invisible });
        }
        for _ in 0..n_invisible {
            tlb.invisible.push(r.u32()?);
        }
        tlb.stats.accesses = r.u64()?;
        tlb.stats.misses = r.u64()?;
        tlb.stats.visibility_faults = r.u64()?;
        tlb.tick = r.u64()?;
        Ok(tlb)
    }

    /// Looks up the page of `addr`; returns `true` on a hit. A miss
    /// installs the translation (evicting the LRU entry when full).
    /// `user` distinguishes user-mode accesses for the stats only.
    pub fn access(&mut self, addr: Addr, _user: bool) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let page = addr >> PAGE_SHIFT;
        if let Some(&hit) = self.pages.get(self.mru) {
            if hit == page {
                self.ticks[self.mru] = self.tick;
                return true;
            }
        }
        if let Some(at) = self.index.get(page) {
            let at = at as usize;
            self.ticks[at] = self.tick;
            self.mru = at;
            return true;
        }
        self.stats.misses += 1;
        if self.pages.len() >= self.entries {
            // Evict the least recently used entry (ticks are unique, so
            // the victim is deterministic).
            let victim = self
                .ticks
                .iter()
                .enumerate()
                .min_by_key(|&(_, &t)| t)
                .map(|(i, _)| i)
                .expect("non-empty TLB");
            self.index.remove(self.pages[victim]);
            self.index.insert(page, victim as u32);
            self.pages[victim] = page;
            self.ticks[victim] = self.tick;
            self.mru = victim;
        } else {
            self.mru = self.pages.len();
            self.index.insert(page, self.mru as u32);
            self.pages.push(page);
            self.ticks.push(self.tick);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1000, true));
        assert!(t.access(0x1abc, true));
        assert!(!t.access(0x2000, true));
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut t = Tlb::new(2);
        t.access(0x1000, true);
        t.access(0x2000, true);
        t.access(0x1000, true); // refresh page 1
        t.access(0x3000, true); // evicts page 2
        assert!(t.access(0x1000, true));
        assert!(!t.access(0x2000, true));
    }

    #[test]
    fn visibility_bit_blocks_user_access() {
        let mut t = Tlb::new(4);
        t.set_invisible(0x4000_0000);
        assert!(!t.check_user_access(0x4000_0123));
        assert!(t.check_user_access(0x1000));
        assert_eq!(t.stats().visibility_faults, 1);
    }

    #[test]
    fn visibility_query_is_pure() {
        // Regression: `user_visible` used to bump `visibility_faults` on
        // every blocked query, so speculative or repeated checks inflated
        // the counter. The query is now side-effect free; only an access
        // that takes the fault records one.
        let mut t = Tlb::new(4);
        t.set_invisible(0x4000_0000);
        for _ in 0..10 {
            assert!(!t.user_visible(0x4000_0123));
        }
        assert_eq!(t.stats().visibility_faults, 0, "queries alone never count");
        assert!(!t.check_user_access(0x4000_0123));
        assert!(!t.check_user_access(0x4000_0ffc));
        assert_eq!(t.stats().visibility_faults, 2, "one fault per committed access");
    }

    #[test]
    fn miss_rate() {
        let mut t = Tlb::new(8);
        t.access(0x1000, true);
        t.access(0x1100, true);
        t.access(0x1200, true);
        t.access(0x2000, true);
        assert!((t.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interleaved_pages_defeat_the_mru_hint_but_still_hit() {
        let mut t = Tlb::new(4);
        t.access(0x1000, true);
        t.access(0x2000, true);
        for _ in 0..10 {
            assert!(t.access(0x1000, true));
            assert!(t.access(0x2000, true));
        }
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn save_restore_replays_identically() {
        use vcfr_isa::wire::{Reader, Writer};
        let mut t = Tlb::new(2);
        t.set_invisible(0x4000_0000);
        t.access(0x1000, true);
        t.access(0x2000, true);
        t.access(0x1000, true);
        let mut w = Writer::with_magic(*b"VCFRTEST");
        t.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        let mut back = Tlb::restore(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.stats(), t.stats());
        assert!(!back.user_visible(0x4000_0123));
        // Same eviction decisions from here on.
        for addr in [0x3000u32, 0x1000, 0x2000, 0x3000] {
            assert_eq!(back.access(addr, true), t.access(addr, true), "addr {addr:#x}");
        }
        assert_eq!(back.stats(), t.stats());
    }

    #[test]
    fn restore_rejects_more_residents_than_entries() {
        use vcfr_isa::wire::{Reader, Writer};
        let mut w = Writer::with_magic(*b"VCFRTEST");
        w.u64(2); // entries
        w.u64(3); // claimed residents > entries
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        assert!(Tlb::restore(&mut r).is_err());
    }

    #[test]
    fn duplicate_set_invisible_is_idempotent() {
        let mut t = Tlb::new(4);
        t.set_invisible(0x5000);
        t.set_invisible(0x5fff); // same page
        assert!(!t.check_user_access(0x5800));
        assert_eq!(t.stats().visibility_faults, 1);
    }
}
