//! Aggregate statistics of one simulation.

use crate::cache::CacheStats;
use crate::dram::DramStats;
use crate::predict::BranchStats;
use crate::tlb::TlbStats;
use vcfr_core::DrcStats;

/// Everything measured during one run of the cycle simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Instructions committed.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// L1 instruction cache counters.
    pub il1: CacheStats,
    /// L1 data cache counters.
    pub dl1: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Instruction TLB counters.
    pub itlb: TlbStats,
    /// Data TLB counters.
    pub dtlb: TlbStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// Branch prediction counters.
    pub branch: BranchStats,
    /// DRC counters (only in VCFR mode).
    pub drc: Option<DrcStats>,
    /// Cycles spent walking the in-memory translation tables on DRC
    /// misses.
    pub drc_walk_cycles: u64,
    /// Cycles the frontend stalled on instruction fetch (IL1 misses,
    /// iTLB walks).
    pub fetch_stall_cycles: u64,
    /// Cycles the backend stalled on data accesses.
    pub load_stall_cycles: u64,
    /// Cycles lost to control-flow redirects (mispredictions, BTB
    /// misses, DRC-miss redirects).
    pub redirect_stall_cycles: u64,
    /// Reads the L1s (and prefetcher) issued into the L2 — the paper's
    /// "L2 pressure".
    pub l2_reads_from_l1: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Simulated wall-clock seconds at the given core frequency.
    pub fn seconds(&self, freq_ghz: f64) -> f64 {
        self.cycles as f64 / (freq_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_time() {
        let s = SimStats { instructions: 800, cycles: 1000, ..SimStats::default() };
        assert!((s.ipc() - 0.8).abs() < 1e-12);
        assert!((s.seconds(1.6) - 1000.0 / 1.6e9).abs() < 1e-18);
        assert_eq!(SimStats::default().ipc(), 0.0);
    }
}
