//! Aggregate statistics of one simulation.

use crate::cache::CacheStats;
use crate::dram::DramStats;
use crate::predict::BranchStats;
use crate::tlb::TlbStats;
use vcfr_core::DrcStats;
use vcfr_isa::wire::{Reader, WireError, Writer};

/// Everything measured during one run of the cycle simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Instructions committed.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// L1 instruction cache counters.
    pub il1: CacheStats,
    /// L1 data cache counters.
    pub dl1: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Instruction TLB counters.
    pub itlb: TlbStats,
    /// Data TLB counters.
    pub dtlb: TlbStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// Branch prediction counters.
    pub branch: BranchStats,
    /// DRC counters (only in VCFR mode).
    pub drc: Option<DrcStats>,
    /// Cycles spent walking the in-memory translation tables on DRC
    /// misses.
    pub drc_walk_cycles: u64,
    /// Cycles the frontend stalled on instruction fetch (IL1 misses,
    /// iTLB walks).
    pub fetch_stall_cycles: u64,
    /// Cycles the backend stalled on data accesses.
    pub load_stall_cycles: u64,
    /// Cycles lost to control-flow redirects (mispredictions, BTB
    /// misses, DRC-miss redirects).
    pub redirect_stall_cycles: u64,
    /// Reads the L1s (and prefetcher) issued into the L2 — the paper's
    /// "L2 pressure".
    pub l2_reads_from_l1: u64,
    /// Extra execute cycles of long-running operations (mul/div), the
    /// non-unit part of the busy-cycle term in the accounting audit.
    pub exec_extra_cycles: u64,
    /// Epoch re-randomizations performed during the run (live table
    /// swaps; 0 without `rerand_epoch`).
    pub rerand_epochs: u64,
    /// Cycles the pipeline paused for epoch re-randomization (DRC flush
    /// plus table rebuild plus stack re-mapping).
    pub rerand_stall_cycles: u64,
    /// Cycles this core queued behind a sibling core at the shared
    /// L2/DRAM port (always 0 on single-core engines). The wait is part
    /// of the fetch/load/walk latencies it delayed, so the audit reports
    /// it as an overlapping term rather than adding it to the disjoint
    /// stall sum.
    pub contention_stall_cycles: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Simulated wall-clock seconds at the given core frequency.
    pub fn seconds(&self, freq_ghz: f64) -> f64 {
        self.cycles as f64 / (freq_ghz * 1e9)
    }

    /// Busy issue cycles: one per committed instruction plus long-op
    /// extra cycles.
    pub fn busy_cycles(&self) -> u64 {
        self.instructions + self.exec_extra_cycles
    }

    /// The cycle-accounting identity terms of this run.
    pub fn accounting(&self) -> vcfr_obs::CycleAccounting {
        vcfr_obs::CycleAccounting {
            cycles: self.cycles,
            busy: self.busy_cycles(),
            fetch_stall: self.fetch_stall_cycles,
            load_stall: self.load_stall_cycles,
            redirect_stall: self.redirect_stall_cycles,
            drc_walk: self.drc_walk_cycles,
            rerand_stall: self.rerand_stall_cycles,
            contention: self.contention_stall_cycles,
        }
    }

    /// Serialises every counter (checkpoint support). The field order is
    /// fixed by this method and its inverse; bumping it requires a new
    /// checkpoint format version.
    pub fn save(&self, w: &mut Writer) {
        w.u64(self.instructions);
        w.u64(self.cycles);
        for c in [&self.il1, &self.dl1, &self.l2] {
            w.u64(c.accesses);
            w.u64(c.misses);
            w.u64(c.writes);
            w.u64(c.writebacks);
            w.u64(c.prefetches_issued);
            w.u64(c.prefetch_hits);
            w.u64(c.prefetch_unused_evictions);
        }
        for t in [&self.itlb, &self.dtlb] {
            w.u64(t.accesses);
            w.u64(t.misses);
            w.u64(t.visibility_faults);
        }
        w.u64(self.dram.accesses);
        w.u64(self.dram.row_hits);
        w.u64(self.dram.row_misses);
        w.u64(self.dram.row_conflicts);
        w.u64(self.dram.refresh_delays);
        w.u64(self.branch.predictions);
        w.u64(self.branch.mispredictions);
        w.u64(self.branch.btb_lookups);
        w.u64(self.branch.btb_misses);
        w.u64(self.branch.btb_wrong_target);
        w.u64(self.branch.ras_predictions);
        w.u64(self.branch.ras_mispredictions);
        match self.drc {
            Some(d) => {
                w.u8(1);
                w.u64(d.lookups);
                w.u64(d.misses);
                w.u64(d.derand_lookups);
                w.u64(d.rand_lookups);
            }
            None => w.u8(0),
        }
        w.u64(self.drc_walk_cycles);
        w.u64(self.fetch_stall_cycles);
        w.u64(self.load_stall_cycles);
        w.u64(self.redirect_stall_cycles);
        w.u64(self.l2_reads_from_l1);
        w.u64(self.exec_extra_cycles);
        w.u64(self.rerand_epochs);
        w.u64(self.rerand_stall_cycles);
        w.u64(self.contention_stall_cycles);
    }

    /// Rebuilds the counters from [`SimStats::save`] output.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated input or a malformed DRC tag.
    pub fn restore(r: &mut Reader<'_>) -> Result<SimStats, WireError> {
        let mut s = SimStats { instructions: r.u64()?, cycles: r.u64()?, ..SimStats::default() };
        let cache = |r: &mut Reader<'_>| -> Result<CacheStats, WireError> {
            Ok(CacheStats {
                accesses: r.u64()?,
                misses: r.u64()?,
                writes: r.u64()?,
                writebacks: r.u64()?,
                prefetches_issued: r.u64()?,
                prefetch_hits: r.u64()?,
                prefetch_unused_evictions: r.u64()?,
            })
        };
        s.il1 = cache(r)?;
        s.dl1 = cache(r)?;
        s.l2 = cache(r)?;
        let tlb = |r: &mut Reader<'_>| -> Result<TlbStats, WireError> {
            Ok(TlbStats { accesses: r.u64()?, misses: r.u64()?, visibility_faults: r.u64()? })
        };
        s.itlb = tlb(r)?;
        s.dtlb = tlb(r)?;
        s.dram = DramStats {
            accesses: r.u64()?,
            row_hits: r.u64()?,
            row_misses: r.u64()?,
            row_conflicts: r.u64()?,
            refresh_delays: r.u64()?,
        };
        s.branch = BranchStats {
            predictions: r.u64()?,
            mispredictions: r.u64()?,
            btb_lookups: r.u64()?,
            btb_misses: r.u64()?,
            btb_wrong_target: r.u64()?,
            ras_predictions: r.u64()?,
            ras_mispredictions: r.u64()?,
        };
        s.drc = match r.u8()? {
            0 => None,
            1 => Some(DrcStats {
                lookups: r.u64()?,
                misses: r.u64()?,
                derand_lookups: r.u64()?,
                rand_lookups: r.u64()?,
            }),
            tag => return Err(WireError::BadTag { tag }),
        };
        s.drc_walk_cycles = r.u64()?;
        s.fetch_stall_cycles = r.u64()?;
        s.load_stall_cycles = r.u64()?;
        s.redirect_stall_cycles = r.u64()?;
        s.l2_reads_from_l1 = r.u64()?;
        s.exec_extra_cycles = r.u64()?;
        s.rerand_epochs = r.u64()?;
        s.rerand_stall_cycles = r.u64()?;
        s.contention_stall_cycles = r.u64()?;
        Ok(s)
    }

    /// Every counter as a registry snapshot under hierarchical `sim.*`
    /// names (`sim.il1.miss`, `sim.drc.walk_cycles`, …) — the manifest
    /// `counters` block.
    pub fn snapshot(&self) -> vcfr_obs::Snapshot {
        let mut counters = vec![
            ("sim.instructions".into(), self.instructions),
            ("sim.cycles".into(), self.cycles),
            ("sim.exec.extra_cycles".into(), self.exec_extra_cycles),
            ("sim.stall.fetch".into(), self.fetch_stall_cycles),
            ("sim.stall.load".into(), self.load_stall_cycles),
            ("sim.stall.redirect".into(), self.redirect_stall_cycles),
            ("sim.l2.reads_from_l1".into(), self.l2_reads_from_l1),
            ("sim.drc.walk_cycles".into(), self.drc_walk_cycles),
            ("sim.rerand.epochs".into(), self.rerand_epochs),
            ("sim.stall.rerand".into(), self.rerand_stall_cycles),
            ("sim.stall.contention".into(), self.contention_stall_cycles),
        ];
        let mut cache = |name: &str, c: &CacheStats| {
            counters.push((format!("sim.{name}.access"), c.accesses));
            counters.push((format!("sim.{name}.miss"), c.misses));
            counters.push((format!("sim.{name}.write"), c.writes));
            counters.push((format!("sim.{name}.writeback"), c.writebacks));
            counters.push((format!("sim.{name}.prefetch.issued"), c.prefetches_issued));
            counters.push((format!("sim.{name}.prefetch.hit"), c.prefetch_hits));
            counters
                .push((format!("sim.{name}.prefetch.unused_eviction"), c.prefetch_unused_evictions));
        };
        cache("il1", &self.il1);
        cache("dl1", &self.dl1);
        cache("l2", &self.l2);
        for (name, t) in [("itlb", &self.itlb), ("dtlb", &self.dtlb)] {
            counters.push((format!("sim.{name}.access"), t.accesses));
            counters.push((format!("sim.{name}.miss"), t.misses));
            counters.push((format!("sim.{name}.visibility_fault"), t.visibility_faults));
        }
        counters.push(("sim.dram.access".into(), self.dram.accesses));
        counters.push(("sim.dram.row_hit".into(), self.dram.row_hits));
        counters.push(("sim.dram.row_miss".into(), self.dram.row_misses));
        counters.push(("sim.dram.row_conflict".into(), self.dram.row_conflicts));
        counters.push(("sim.dram.refresh_delay".into(), self.dram.refresh_delays));
        counters.push(("sim.branch.prediction".into(), self.branch.predictions));
        counters.push(("sim.branch.misprediction".into(), self.branch.mispredictions));
        counters.push(("sim.branch.btb.lookup".into(), self.branch.btb_lookups));
        counters.push(("sim.branch.btb.miss".into(), self.branch.btb_misses));
        counters.push(("sim.branch.btb.wrong_target".into(), self.branch.btb_wrong_target));
        counters.push(("sim.branch.ras.prediction".into(), self.branch.ras_predictions));
        counters.push(("sim.branch.ras.misprediction".into(), self.branch.ras_mispredictions));
        if let Some(d) = self.drc {
            counters.push(("sim.drc.lookup".into(), d.lookups));
            counters.push(("sim.drc.miss".into(), d.misses));
            counters.push(("sim.drc.derand_lookup".into(), d.derand_lookups));
            counters.push(("sim.drc.rand_lookup".into(), d.rand_lookups));
        }
        vcfr_obs::Snapshot::from_counters(counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_time() {
        let s = SimStats { instructions: 800, cycles: 1000, ..SimStats::default() };
        assert!((s.ipc() - 0.8).abs() < 1e-12);
        assert!((s.seconds(1.6) - 1000.0 / 1.6e9).abs() < 1e-18);
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn accounting_terms_mirror_the_stat_fields() {
        let s = SimStats {
            instructions: 800,
            cycles: 1000,
            exec_extra_cycles: 50,
            fetch_stall_cycles: 100,
            load_stall_cycles: 60,
            redirect_stall_cycles: 40,
            drc_walk_cycles: 30,
            rerand_stall_cycles: 20,
            contention_stall_cycles: 10,
            ..SimStats::default()
        };
        let a = s.accounting();
        assert_eq!(a.cycles, 1000);
        assert_eq!(a.busy, 850);
        assert_eq!(a.fetch_stall, 100);
        assert_eq!(a.load_stall, 60);
        assert_eq!(a.redirect_stall, 40);
        assert_eq!(a.drc_walk, 30);
        assert_eq!(a.rerand_stall, 20);
        assert_eq!(a.contention, 10);
    }

    #[test]
    fn save_restore_roundtrip_is_exact() {
        use vcfr_isa::wire::{Reader, Writer};
        let mut s = SimStats { instructions: 12, cycles: 34, ..SimStats::default() };
        s.il1.misses = 5;
        s.branch.ras_mispredictions = 2;
        s.drc = Some(DrcStats { lookups: 9, misses: 2, derand_lookups: 7, rand_lookups: 2 });
        s.rerand_epochs = 3;
        s.contention_stall_cycles = 17;
        for stats in [s, SimStats::default()] {
            let mut w = Writer::with_magic(*b"VCFRTEST");
            stats.save(&mut w);
            let buf = w.into_bytes();
            let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
            let back = SimStats::restore(&mut r).unwrap();
            assert!(r.is_exhausted());
            assert_eq!(back, stats);
        }
    }

    #[test]
    fn snapshot_uses_hierarchical_names() {
        let mut s = SimStats { instructions: 12, cycles: 34, ..SimStats::default() };
        s.il1.misses = 5;
        s.drc = Some(DrcStats { lookups: 9, misses: 2, derand_lookups: 7, rand_lookups: 2 });
        let snap = s.snapshot();
        assert_eq!(snap.counter("sim.instructions"), 12);
        assert_eq!(snap.counter("sim.cycles"), 34);
        assert_eq!(snap.counter("sim.il1.miss"), 5);
        assert_eq!(snap.counter("sim.drc.lookup"), 9);
        // Baseline runs (no DRC) simply omit the DRC lookup counters.
        assert!(!SimStats::default()
            .snapshot()
            .counters
            .iter()
            .any(|(k, _)| k == "sim.drc.lookup"));
    }
}
