//! Aggregate statistics of one simulation.

use crate::cache::CacheStats;
use crate::dram::DramStats;
use crate::predict::BranchStats;
use crate::tlb::TlbStats;
use vcfr_core::DrcStats;

/// Everything measured during one run of the cycle simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Instructions committed.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// L1 instruction cache counters.
    pub il1: CacheStats,
    /// L1 data cache counters.
    pub dl1: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Instruction TLB counters.
    pub itlb: TlbStats,
    /// Data TLB counters.
    pub dtlb: TlbStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// Branch prediction counters.
    pub branch: BranchStats,
    /// DRC counters (only in VCFR mode).
    pub drc: Option<DrcStats>,
    /// Cycles spent walking the in-memory translation tables on DRC
    /// misses.
    pub drc_walk_cycles: u64,
    /// Cycles the frontend stalled on instruction fetch (IL1 misses,
    /// iTLB walks).
    pub fetch_stall_cycles: u64,
    /// Cycles the backend stalled on data accesses.
    pub load_stall_cycles: u64,
    /// Cycles lost to control-flow redirects (mispredictions, BTB
    /// misses, DRC-miss redirects).
    pub redirect_stall_cycles: u64,
    /// Reads the L1s (and prefetcher) issued into the L2 — the paper's
    /// "L2 pressure".
    pub l2_reads_from_l1: u64,
    /// Extra execute cycles of long-running operations (mul/div), the
    /// non-unit part of the busy-cycle term in the accounting audit.
    pub exec_extra_cycles: u64,
    /// Epoch re-randomizations performed during the run (live table
    /// swaps; 0 without `rerand_epoch`).
    pub rerand_epochs: u64,
    /// Cycles the pipeline paused for epoch re-randomization (DRC flush
    /// plus table rebuild plus stack re-mapping).
    pub rerand_stall_cycles: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Simulated wall-clock seconds at the given core frequency.
    pub fn seconds(&self, freq_ghz: f64) -> f64 {
        self.cycles as f64 / (freq_ghz * 1e9)
    }

    /// Busy issue cycles: one per committed instruction plus long-op
    /// extra cycles.
    pub fn busy_cycles(&self) -> u64 {
        self.instructions + self.exec_extra_cycles
    }

    /// The cycle-accounting identity terms of this run.
    pub fn accounting(&self) -> vcfr_obs::CycleAccounting {
        vcfr_obs::CycleAccounting {
            cycles: self.cycles,
            busy: self.busy_cycles(),
            fetch_stall: self.fetch_stall_cycles,
            load_stall: self.load_stall_cycles,
            redirect_stall: self.redirect_stall_cycles,
            drc_walk: self.drc_walk_cycles,
            rerand_stall: self.rerand_stall_cycles,
        }
    }

    /// Every counter as a registry snapshot under hierarchical `sim.*`
    /// names (`sim.il1.miss`, `sim.drc.walk_cycles`, …) — the manifest
    /// `counters` block.
    pub fn snapshot(&self) -> vcfr_obs::Snapshot {
        let mut counters = vec![
            ("sim.instructions".into(), self.instructions),
            ("sim.cycles".into(), self.cycles),
            ("sim.exec.extra_cycles".into(), self.exec_extra_cycles),
            ("sim.stall.fetch".into(), self.fetch_stall_cycles),
            ("sim.stall.load".into(), self.load_stall_cycles),
            ("sim.stall.redirect".into(), self.redirect_stall_cycles),
            ("sim.l2.reads_from_l1".into(), self.l2_reads_from_l1),
            ("sim.drc.walk_cycles".into(), self.drc_walk_cycles),
            ("sim.rerand.epochs".into(), self.rerand_epochs),
            ("sim.stall.rerand".into(), self.rerand_stall_cycles),
        ];
        let mut cache = |name: &str, c: &CacheStats| {
            counters.push((format!("sim.{name}.access"), c.accesses));
            counters.push((format!("sim.{name}.miss"), c.misses));
            counters.push((format!("sim.{name}.write"), c.writes));
            counters.push((format!("sim.{name}.writeback"), c.writebacks));
            counters.push((format!("sim.{name}.prefetch.issued"), c.prefetches_issued));
            counters.push((format!("sim.{name}.prefetch.hit"), c.prefetch_hits));
            counters
                .push((format!("sim.{name}.prefetch.unused_eviction"), c.prefetch_unused_evictions));
        };
        cache("il1", &self.il1);
        cache("dl1", &self.dl1);
        cache("l2", &self.l2);
        for (name, t) in [("itlb", &self.itlb), ("dtlb", &self.dtlb)] {
            counters.push((format!("sim.{name}.access"), t.accesses));
            counters.push((format!("sim.{name}.miss"), t.misses));
            counters.push((format!("sim.{name}.visibility_fault"), t.visibility_faults));
        }
        counters.push(("sim.dram.access".into(), self.dram.accesses));
        counters.push(("sim.dram.row_hit".into(), self.dram.row_hits));
        counters.push(("sim.dram.row_miss".into(), self.dram.row_misses));
        counters.push(("sim.dram.row_conflict".into(), self.dram.row_conflicts));
        counters.push(("sim.dram.refresh_delay".into(), self.dram.refresh_delays));
        counters.push(("sim.branch.prediction".into(), self.branch.predictions));
        counters.push(("sim.branch.misprediction".into(), self.branch.mispredictions));
        counters.push(("sim.branch.btb.lookup".into(), self.branch.btb_lookups));
        counters.push(("sim.branch.btb.miss".into(), self.branch.btb_misses));
        counters.push(("sim.branch.btb.wrong_target".into(), self.branch.btb_wrong_target));
        counters.push(("sim.branch.ras.prediction".into(), self.branch.ras_predictions));
        counters.push(("sim.branch.ras.misprediction".into(), self.branch.ras_mispredictions));
        if let Some(d) = self.drc {
            counters.push(("sim.drc.lookup".into(), d.lookups));
            counters.push(("sim.drc.miss".into(), d.misses));
            counters.push(("sim.drc.derand_lookup".into(), d.derand_lookups));
            counters.push(("sim.drc.rand_lookup".into(), d.rand_lookups));
        }
        vcfr_obs::Snapshot::from_counters(counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_time() {
        let s = SimStats { instructions: 800, cycles: 1000, ..SimStats::default() };
        assert!((s.ipc() - 0.8).abs() < 1e-12);
        assert!((s.seconds(1.6) - 1000.0 / 1.6e9).abs() < 1e-18);
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn accounting_terms_mirror_the_stat_fields() {
        let s = SimStats {
            instructions: 800,
            cycles: 1000,
            exec_extra_cycles: 50,
            fetch_stall_cycles: 100,
            load_stall_cycles: 60,
            redirect_stall_cycles: 40,
            drc_walk_cycles: 30,
            rerand_stall_cycles: 20,
            ..SimStats::default()
        };
        let a = s.accounting();
        assert_eq!(a.cycles, 1000);
        assert_eq!(a.busy, 850);
        assert_eq!(a.fetch_stall, 100);
        assert_eq!(a.load_stall, 60);
        assert_eq!(a.redirect_stall, 40);
        assert_eq!(a.drc_walk, 30);
        assert_eq!(a.rerand_stall, 20);
    }

    #[test]
    fn snapshot_uses_hierarchical_names() {
        let mut s = SimStats { instructions: 12, cycles: 34, ..SimStats::default() };
        s.il1.misses = 5;
        s.drc = Some(DrcStats { lookups: 9, misses: 2, derand_lookups: 7, rand_lookups: 2 });
        let snap = s.snapshot();
        assert_eq!(snap.counter("sim.instructions"), 12);
        assert_eq!(snap.counter("sim.cycles"), 34);
        assert_eq!(snap.counter("sim.il1.miss"), 5);
        assert_eq!(snap.counter("sim.drc.lookup"), 9);
        // Baseline runs (no DRC) simply omit the DRC lookup counters.
        assert!(!SimStats::default()
            .snapshot()
            .counters
            .iter()
            .any(|(k, _)| k == "sim.drc.lookup"));
    }
}
