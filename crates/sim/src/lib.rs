//! A cycle-based, trace-driven model of the paper's simulated core: a
//! 1.6 GHz single-issue in-order x86-style pipeline with gshare/BTB/RAS
//! prediction, split 32 KB L1s, a 512 KB unified L2, a next-line
//! instruction prefetcher, fully-associative TLBs, a DDR DRAM model — and
//! the VCFR mediation layer (dual program counters plus a DRC lookup
//! buffer whose misses walk in-memory tables through the L2).
//!
//! The architectural instruction stream comes from the functional
//! interpreter in `vcfr-isa`; this crate replays it through the timing
//! model. Three [`Mode`]s reproduce the paper's machines: baseline,
//! naive hardware ILR (scattered fetch, free address mapping) and VCFR.
//!
//! # Example
//!
//! ```
//! use vcfr_isa::{Asm, Reg};
//! use vcfr_rewriter::{randomize, RandomizeConfig};
//! use vcfr_sim::{simulate, Mode, SimConfig};
//! use vcfr_core::DrcConfig;
//!
//! let mut a = Asm::new(0x1000);
//! a.mov_ri(Reg::Rcx, 100);
//! let top = a.here();
//! a.alu_ri(vcfr_isa::AluOp::Sub, Reg::Rcx, 1);
//! a.cmp_i(Reg::Rcx, 0);
//! a.jcc(vcfr_isa::Cond::Ne, top);
//! a.halt();
//! let img = a.finish().unwrap();
//!
//! let cfg = SimConfig::default();
//! let base = simulate(Mode::Baseline(&img), &cfg, 100_000).unwrap();
//! let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
//! let vcfr = simulate(
//!     Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
//!     &cfg,
//!     100_000,
//! ).unwrap();
//! assert_eq!(base.outcome.output, vcfr.outcome.output);
//! ```

#![warn(missing_docs)]

mod cache;
mod checkpoint;
mod config;
mod dram;
mod emulator;
mod engine;
mod error;
mod faults;
mod flatmap;
mod hierarchy;
mod multicore;
mod ooo;
mod predict;
mod session;
mod stats;
mod tlb;

pub use cache::{AccessResult, Cache, CacheStats};
pub use checkpoint::{CheckpointError, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use config::{
    BtbConfig, CacheConfig, DramConfig, DrcBacking, EngineKind, GshareConfig, SimConfig,
    SimConfigBuilder,
};
pub use error::VcfrError;
pub use dram::{Dram, DramStats};
pub use emulator::{emulate, EmulationReport, EmulatorCostModel};
pub use engine::{
    simulate, simulate_faulted, simulate_sampled, FaultedRun, IntervalSample, Mode, SimError,
    SimOutput, TraceEvent, TraceEventKind,
};
pub use faults::{
    ContainmentPolicy, FaultOutcome, FaultPersistence, FaultPlan, FaultRecord, FaultStats,
    FaultTarget, ScheduledFault,
};
pub use flatmap::FlatMap;
pub use hierarchy::MemoryHierarchy;
pub use multicore::{simulate_multicore, MultiCoreOutput};
pub use ooo::{simulate_ooo, OooConfig};
pub use predict::{BranchStats, Btb, Gshare, Ras};
pub use session::{ProgressSink, Session, SessionOutcome, SessionStatus};
pub use stats::SimStats;
pub use tlb::{Tlb, TlbStats};
