//! Branch prediction: 2-level gshare direction predictor, set-associative
//! branch target buffer, and a return address stack — the §VI-C predictor
//! complement.

use crate::config::{BtbConfig, GshareConfig};
use vcfr_isa::wire::{Reader, WireError, Writer};
use vcfr_isa::Addr;

/// Direction-predictor counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional branches predicted.
    pub predictions: u64,
    /// Direction mispredictions.
    pub mispredictions: u64,
    /// BTB lookups for taken transfers.
    pub btb_lookups: u64,
    /// BTB lookups that missed (target unknown at fetch).
    pub btb_misses: u64,
    /// BTB hits whose stored target was wrong (indirects that moved).
    pub btb_wrong_target: u64,
    /// Return-address-stack predictions.
    pub ras_predictions: u64,
    /// RAS mispredictions (overflowed or clobbered stack).
    pub ras_mispredictions: u64,
}

impl BranchStats {
    /// Conditional-direction misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// 2-level gshare: global history XORed into a pattern history table of
/// 2-bit saturating counters.
#[derive(Clone, Debug)]
pub struct Gshare {
    history: u64,
    mask: u64,
    pht: Vec<u8>,
}

impl Gshare {
    /// Creates a predictor with `cfg.history_bits` of global history.
    pub fn new(cfg: GshareConfig) -> Gshare {
        let bits = cfg.history_bits.clamp(4, 24);
        Gshare { history: 0, mask: (1u64 << bits) - 1, pht: vec![1u8; 1usize << bits] }
    }

    fn index(&self, pc: Addr) -> usize {
        ((((pc >> 1) as u64) ^ self.history) & self.mask) as usize
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: Addr) -> bool {
        self.pht[self.index(pc)] >= 2
    }

    /// Trains the predictor with the resolved direction and shifts the
    /// global history.
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.pht[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & self.mask;
    }

    /// Serialises the history register and pattern table (checkpoint
    /// support).
    pub fn save(&self, w: &mut Writer) {
        w.u64(self.history);
        w.bytes(&self.pht);
    }

    /// Rebuilds a predictor from [`Gshare::save`] output; `cfg` must
    /// match the saved predictor's configuration.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated input or a table size that disagrees
    /// with `cfg`.
    pub fn restore(cfg: GshareConfig, r: &mut Reader<'_>) -> Result<Gshare, WireError> {
        let mut g = Gshare::new(cfg);
        g.history = r.u64()?;
        let pht = r.bytes()?;
        if pht.len() != g.pht.len() {
            return Err(WireError::LengthOutOfRange { len: pht.len() as u64 });
        }
        g.pht.copy_from_slice(pht);
        Ok(g)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct BtbLine {
    valid: bool,
    tag: Addr,
    target: Addr,
    lru: u64,
}

/// Set-associative branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    sets: usize,
    ways: usize,
    lines: Vec<BtbLine>,
    tick: u64,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics when entries do not divide into a power-of-two set count.
    pub fn new(cfg: BtbConfig) -> Btb {
        let sets = cfg.entries / cfg.ways;
        assert!(sets.is_power_of_two() && sets > 0, "BTB sets must be a power of two");
        Btb { sets, ways: cfg.ways, lines: vec![BtbLine::default(); cfg.entries], tick: 0 }
    }

    fn set_of(&self, pc: Addr) -> usize {
        ((pc >> 1) as usize) & (self.sets - 1)
    }

    /// The predicted target for the transfer at `pc`, if cached.
    pub fn lookup(&mut self, pc: Addr) -> Option<Addr> {
        self.tick += 1;
        let base = self.set_of(pc) * self.ways;
        for w in 0..self.ways {
            let line = &mut self.lines[base + w];
            if line.valid && line.tag == pc {
                line.lru = self.tick;
                return Some(line.target);
            }
        }
        None
    }

    /// Installs or updates the target for `pc`.
    pub fn update(&mut self, pc: Addr, target: Addr) {
        self.tick += 1;
        let base = self.set_of(pc) * self.ways;
        // Update in place when present.
        for w in 0..self.ways {
            let line = &mut self.lines[base + w];
            if line.valid && line.tag == pc {
                line.target = target;
                line.lru = self.tick;
                return;
            }
        }
        let victim = (base..base + self.ways)
            .min_by_key(|&i| if self.lines[i].valid { self.lines[i].lru + 1 } else { 0 })
            .expect("ways > 0");
        self.lines[victim] = BtbLine { valid: true, tag: pc, target, lru: self.tick };
    }

    /// Serialises every line plus the LRU tick (checkpoint support).
    pub fn save(&self, w: &mut Writer) {
        for line in &self.lines {
            w.u8(u8::from(line.valid));
            w.u32(line.tag);
            w.u32(line.target);
            w.u64(line.lru);
        }
        w.u64(self.tick);
    }

    /// Rebuilds a BTB from [`Btb::save`] output; `cfg` must match the
    /// saved BTB's geometry.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated input or a malformed valid flag.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` itself is degenerate (see [`Btb::new`]).
    pub fn restore(cfg: BtbConfig, r: &mut Reader<'_>) -> Result<Btb, WireError> {
        let mut b = Btb::new(cfg);
        for line in &mut b.lines {
            let valid = r.u8()?;
            if valid > 1 {
                return Err(WireError::BadTag { tag: valid });
            }
            let tag = r.u32()?;
            let target = r.u32()?;
            let lru = r.u64()?;
            *line = BtbLine { valid: valid == 1, tag, target, lru };
        }
        b.tick = r.u64()?;
        Ok(b)
    }
}

/// A fixed-depth return address stack that wraps on overflow, as
/// hardware RASes do.
#[derive(Clone, Debug)]
pub struct Ras {
    stack: Vec<Addr>,
    top: usize,
    depth: usize,
}

impl Ras {
    /// Creates a RAS with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics when `entries` is zero.
    pub fn new(entries: usize) -> Ras {
        assert!(entries > 0, "RAS needs at least one entry");
        Ras { stack: vec![0; entries], top: 0, depth: 0 }
    }

    /// Pushes a return address (a `call` retired).
    pub fn push(&mut self, ret: Addr) {
        self.top = (self.top + 1) % self.stack.len();
        self.stack[self.top] = ret;
        self.depth = (self.depth + 1).min(self.stack.len());
    }

    /// Pops the predicted return address (a `ret` fetched); `None` when
    /// the stack has underflowed.
    pub fn pop(&mut self) -> Option<Addr> {
        if self.depth == 0 {
            return None;
        }
        let v = self.stack[self.top];
        self.top = (self.top + self.stack.len() - 1) % self.stack.len();
        self.depth -= 1;
        Some(v)
    }

    /// Serialises the stack contents and cursors (checkpoint support).
    pub fn save(&self, w: &mut Writer) {
        w.u64(self.stack.len() as u64);
        for v in &self.stack {
            w.u32(*v);
        }
        w.u64(self.top as u64);
        w.u64(self.depth as u64);
    }

    /// Rebuilds a RAS from [`Ras::save`] output.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated input or out-of-range cursors.
    pub fn restore(r: &mut Reader<'_>) -> Result<Ras, WireError> {
        let n = r.u64()?;
        if n == 0 || n > 1 << 20 {
            return Err(WireError::LengthOutOfRange { len: n });
        }
        let mut ras = Ras::new(n as usize);
        for slot in &mut ras.stack {
            *slot = r.u32()?;
        }
        let top = r.u64()?;
        let depth = r.u64()?;
        if top >= n || depth > n {
            return Err(WireError::LengthOutOfRange { len: top.max(depth) });
        }
        ras.top = top as usize;
        ras.depth = depth as usize;
        Ok(ras)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_a_loop() {
        let mut g = Gshare::new(GshareConfig { history_bits: 10 });
        let pc = 0x1040;
        // Warm up on always-taken long enough for the history register to
        // saturate at all-ones and train that index.
        for _ in 0..32 {
            g.update(pc, true);
        }
        assert!(g.predict(pc));
    }

    #[test]
    fn gshare_tracks_alternation_via_history() {
        let mut g = Gshare::new(GshareConfig { history_bits: 10 });
        let pc = 0x2000;
        let mut correct = 0;
        let mut total = 0;
        let mut taken = false;
        for i in 0..400 {
            taken = !taken;
            if i >= 100 {
                total += 1;
                if g.predict(pc) == taken {
                    correct += 1;
                }
            }
            g.update(pc, taken);
        }
        // With history the alternating pattern becomes near-perfect.
        assert!(correct as f64 / total as f64 > 0.9, "{correct}/{total}");
    }

    #[test]
    fn btb_stores_and_replaces() {
        let mut b = Btb::new(BtbConfig { entries: 8, ways: 2 });
        b.update(0x1000, 0x2000);
        assert_eq!(b.lookup(0x1000), Some(0x2000));
        b.update(0x1000, 0x3000);
        assert_eq!(b.lookup(0x1000), Some(0x3000));
        assert_eq!(b.lookup(0x1001), None);
    }

    #[test]
    fn btb_lru_per_set() {
        // 1 set × 2 ways: three distinct pcs force an eviction.
        let mut b = Btb::new(BtbConfig { entries: 2, ways: 2 });
        b.update(0x10, 1);
        b.update(0x20, 2);
        b.lookup(0x10); // refresh
        b.update(0x30, 3); // evicts 0x20
        assert_eq!(b.lookup(0x10), Some(1));
        assert_eq!(b.lookup(0x20), None);
        assert_eq!(b.lookup(0x30), Some(3));
    }

    #[test]
    fn predictors_save_restore_roundtrip() {
        use vcfr_isa::wire::{Reader, Writer};
        let mut g = Gshare::new(GshareConfig { history_bits: 8 });
        let mut b = Btb::new(BtbConfig { entries: 8, ways: 2 });
        let mut ras = Ras::new(4);
        for i in 0..50u32 {
            g.update(0x1000 + i * 4, i % 3 != 0);
            b.update(0x1000 + (i % 5) * 4, 0x2000 + i);
        }
        ras.push(0x100);
        ras.push(0x200);
        let mut w = Writer::with_magic(*b"VCFRTEST");
        g.save(&mut w);
        b.save(&mut w);
        ras.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        let g2 = Gshare::restore(GshareConfig { history_bits: 8 }, &mut r).unwrap();
        let mut b2 = Btb::restore(BtbConfig { entries: 8, ways: 2 }, &mut r).unwrap();
        let mut ras2 = Ras::restore(&mut r).unwrap();
        assert!(r.is_exhausted());
        for i in 0..60u32 {
            let pc = 0x1000 + i * 4;
            assert_eq!(g2.predict(pc), g.predict(pc), "pc {pc:#x}");
            assert_eq!(b2.lookup(pc), b.lookup(pc), "pc {pc:#x}");
        }
        assert_eq!(ras2.pop(), ras.pop());
        assert_eq!(ras2.pop(), ras.pop());
        assert_eq!(ras2.pop(), None);
    }

    #[test]
    fn gshare_restore_rejects_mismatched_table_size() {
        use vcfr_isa::wire::{Reader, Writer};
        let g = Gshare::new(GshareConfig { history_bits: 8 });
        let mut w = Writer::with_magic(*b"VCFRTEST");
        g.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        assert!(Gshare::restore(GshareConfig { history_bits: 10 }, &mut r).is_err());
    }

    #[test]
    fn ras_matches_call_ret_nesting() {
        let mut r = Ras::new(4);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), Some(0x100));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_wraps_on_overflow() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        // Depth saturated at 2; the clobbered entry is gone.
        assert_eq!(r.pop(), None);
    }
}
