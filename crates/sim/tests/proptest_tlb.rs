//! Property tests for the fully-associative LRU [`Tlb`]: arbitrary
//! access interleavings agree with a `BTreeMap`-based reference model.
//! Pages are drawn from a domain slightly larger than the TLB so
//! capacity eviction and the MRU fast path are exercised constantly, and
//! the visibility machinery is checked against a plain set: the pure
//! query never counts, the committed check counts exactly once per
//! blocked access.

use proptest::prelude::*;
use std::collections::BTreeMap;
use vcfr_sim::Tlb;

const PAGE: u32 = 4096;

/// Reference model: page number → last-use tick, bounded to `entries`
/// residents by evicting the minimum tick.
struct ModelTlb {
    entries: usize,
    resident: BTreeMap<u32, u64>,
    tick: u64,
    misses: u64,
}

impl ModelTlb {
    fn new(entries: usize) -> ModelTlb {
        ModelTlb { entries, resident: BTreeMap::new(), tick: 0, misses: 0 }
    }

    fn access(&mut self, addr: u32) -> bool {
        self.tick += 1;
        let page = addr / PAGE;
        if self.resident.contains_key(&page) {
            self.resident.insert(page, self.tick);
            return true;
        }
        self.misses += 1;
        if self.resident.len() >= self.entries {
            let victim = *self
                .resident
                .iter()
                .min_by_key(|&(_, &t)| t)
                .map(|(p, _)| p)
                .expect("non-empty model");
            self.resident.remove(&victim);
        }
        self.resident.insert(page, self.tick);
        false
    }
}

/// One scripted access: (page index, offset within the page).
fn arb_accesses() -> impl Strategy<Value = Vec<(u32, u32)>> {
    // 12 distinct pages against an 8-entry TLB: hits, misses and
    // evictions all occur; repeated indices drive the MRU fast path.
    proptest::collection::vec((0u32..12, 0u32..PAGE), 1..600)
}

proptest! {
    /// Hit/miss verdicts and the miss counter agree with the reference
    /// model after every access — in particular after evictions, and on
    /// same-page re-accesses where a stale MRU hint would lie.
    #[test]
    fn matches_btreemap_model(ops in arb_accesses()) {
        let mut t = Tlb::new(8);
        let mut model = ModelTlb::new(8);
        for (pi, off) in ops {
            let addr = 0x10_0000 + pi * PAGE + off;
            prop_assert_eq!(t.access(addr, true), model.access(addr));
            prop_assert_eq!(t.stats().misses, model.misses);
        }
    }

    /// The visibility query is pure and page-granular: `user_visible`
    /// agrees with a set of invisible pages, never counts a fault, and
    /// `check_user_access` counts exactly one fault per blocked access.
    #[test]
    fn visibility_agrees_with_a_set_model(
        invisible_mask in any::<u16>(),
        probes in proptest::collection::vec((0u32..16, 0u32..PAGE), 1..100),
    ) {
        let mut t = Tlb::new(8);
        for pi in 0..16u32 {
            if invisible_mask & (1 << pi) != 0 {
                t.set_invisible(0x20_0000 + pi * PAGE);
            }
        }
        // Pure queries leave the counter untouched.
        for &(pi, off) in &probes {
            let addr = 0x20_0000 + pi * PAGE + off;
            let expect = invisible_mask & (1 << pi) == 0;
            prop_assert_eq!(t.user_visible(addr), expect);
        }
        prop_assert_eq!(t.stats().visibility_faults, 0);
        // Committed checks count one fault per blocked access.
        let mut blocked = 0u64;
        for &(pi, off) in &probes {
            let addr = 0x20_0000 + pi * PAGE + off;
            let expect = invisible_mask & (1 << pi) == 0;
            prop_assert_eq!(t.check_user_access(addr), expect);
            if !expect {
                blocked += 1;
            }
        }
        prop_assert_eq!(t.stats().visibility_faults, blocked);
    }
}
