//! Property tests for the open-addressed [`FlatMap`]: arbitrary
//! insert/remove/get interleavings agree with a `std::collections::HashMap`
//! model, with keys drawn from a small domain so probe chains collide and
//! backward-shift deletion runs constantly.

use proptest::prelude::*;
use std::collections::HashMap;
use vcfr_sim::FlatMap;

/// One scripted operation: (selector, key index, value).
fn arb_ops() -> impl Strategy<Value = Vec<(u8, u32, u32)>> {
    proptest::collection::vec((any::<u8>(), 0u32..64, any::<u32>()), 1..400)
}

proptest! {
    /// The map agrees with the `HashMap` model after every operation.
    #[test]
    fn matches_hashmap_model(ops in arb_ops()) {
        let mut m = FlatMap::new();
        let mut model: HashMap<u32, u32> = HashMap::new();
        for (sel, ki, val) in ops {
            // Stack-like keys: 8-byte-strided addresses.
            let key = 0xe000 + ki * 8;
            match sel % 3 {
                0 => {
                    m.insert(key, val);
                    model.insert(key, val);
                }
                1 => prop_assert_eq!(m.remove(key), model.remove(&key)),
                _ => prop_assert_eq!(m.get(key), model.get(&key).copied()),
            }
            prop_assert_eq!(m.len(), model.len());
        }
        // Every surviving entry is reachable: backward-shift deletion
        // never left a hole that truncates a probe chain.
        for (&k, &v) in &model {
            prop_assert_eq!(m.get(k), Some(v));
        }
        // And no deleted key resurfaces.
        for ki in 0..64u32 {
            let key = 0xe000 + ki * 8;
            if !model.contains_key(&key) {
                prop_assert_eq!(m.get(key), None);
            }
        }
    }

    /// Removing any subset of a colliding cluster leaves the rest intact.
    #[test]
    fn deletion_preserves_the_rest(keep_mask in any::<u32>(), n in 1u32..32) {
        let mut m = FlatMap::new();
        for i in 0..n {
            m.insert(0xf000 + i * 8, i);
        }
        for i in 0..n {
            if keep_mask & (1 << i) == 0 {
                prop_assert_eq!(m.remove(0xf000 + i * 8), Some(i));
            }
        }
        for i in 0..n {
            let expect = if keep_mask & (1 << i) != 0 { Some(i) } else { None };
            prop_assert_eq!(m.get(0xf000 + i * 8), expect);
        }
    }
}
