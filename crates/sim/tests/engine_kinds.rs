//! Differential suite for the engine-generic [`Session`]: the three
//! [`EngineKind`]s behind the same facade must agree wherever their
//! semantics overlap.
//!
//! - A 1-core multicore session is *bit-identical* to the plain
//!   in-order session (the shared level is private, the port charges
//!   no same-core wait).
//! - The OoO and multicore engines are bit-deterministic: two fresh
//!   runs of the same spec produce identical stats, outcomes, and
//!   mid-run checkpoint bytes.
//! - A mid-run checkpoint round-trips through a fresh session on every
//!   engine kind; a checkpoint from one kind is rejected by a session
//!   of another (the kind is part of the context fingerprint).
//! - Shared-L2 port contention is zero without a sibling and positive
//!   with one, and stays inside the audit's containment bound.

use vcfr_core::DrcConfig;
use vcfr_rewriter::{randomize, RandomizeConfig};
use vcfr_sim::{
    CheckpointError, EngineKind, Mode, Session, SessionOutcome, SessionStatus, SimConfig,
    VcfrError,
};
use vcfr_workloads::Workload;

const SEED: u64 = 2015;

/// A capped workload so every test finishes quickly in debug builds.
fn workload() -> Workload {
    let mut w = vcfr_workloads::by_name("bzip2").expect("bzip2 exists");
    w.max_insts = w.max_insts.min(60_000);
    w
}

fn config(engine: EngineKind) -> SimConfig {
    SimConfig { engine, ..SimConfig::default() }
}

/// Runs `mode` on `engine` to completion, sampling ten intervals and
/// grabbing the checkpoint bytes at a mid-run boundary.
fn run(mode: Mode, engine: EngineKind, max_insts: u64) -> (SessionOutcome, Vec<u8>) {
    let cfg = config(engine);
    let mut s = Session::new(mode, &cfg, max_insts)
        .expect("session builds")
        .with_sampling((max_insts / 10).max(1));
    let mid = match s.run_for(max_insts / 3) {
        Ok(SessionStatus::Running) => s.checkpoint(),
        Ok(SessionStatus::Done(_)) => Vec::new(),
        Err(e) => panic!("{engine:?}: {e}"),
    };
    (s.run().expect("session finishes"), mid)
}

#[test]
fn one_core_multicore_session_matches_the_inorder_session() {
    let w = workload();
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(SEED)).expect("randomizes");
    let modes: [(&str, Mode); 3] = [
        ("baseline", Mode::Baseline(&w.image)),
        ("naive", Mode::NaiveIlr(&rp)),
        ("vcfr", Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) }),
    ];
    for (name, mode) in modes {
        let (inorder, _) = run(mode, EngineKind::InOrder, w.max_insts);
        let (mc1, _) = run(mode, EngineKind::Multicore { cores: 1 }, w.max_insts);
        assert_eq!(inorder.output.stats, mc1.output.stats, "{name}: stats diverge");
        assert_eq!(inorder.output.outcome, mc1.output.outcome, "{name}: outcome diverges");
        assert_eq!(inorder.samples, mc1.samples, "{name}: samples diverge");
        let mc = mc1.multicore.expect("multicore sessions carry the breakdown");
        assert_eq!(mc.per_core.len(), 1, "{name}");
        assert_eq!(mc.stats.contention_stall_cycles, 0, "{name}: solo core paid contention");
    }
}

#[test]
fn ooo_and_multicore_runs_are_bit_deterministic() {
    let w = workload();
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(SEED)).expect("randomizes");
    for engine in [EngineKind::Ooo, EngineKind::Multicore { cores: 2 }] {
        let mode = || Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) };
        let (a, ckpt_a) = run(mode(), engine, w.max_insts);
        let (b, ckpt_b) = run(mode(), engine, w.max_insts);
        assert_eq!(a.output.stats, b.output.stats, "{engine:?}: stats diverge");
        assert_eq!(a.output.outcome, b.output.outcome, "{engine:?}: outcome diverges");
        assert_eq!(a.samples, b.samples, "{engine:?}: samples diverge");
        assert!(!ckpt_a.is_empty(), "{engine:?}: run finished before the checkpoint");
        assert_eq!(ckpt_a, ckpt_b, "{engine:?}: checkpoint bytes diverge");
    }
}

#[test]
fn checkpoints_round_trip_on_every_engine_kind() {
    let w = workload();
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(SEED)).expect("randomizes");
    for engine in [EngineKind::InOrder, EngineKind::Ooo, EngineKind::Multicore { cores: 2 }] {
        let mode = || Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) };
        let (reference, mid) = run(mode(), engine, w.max_insts);
        assert!(!mid.is_empty(), "{engine:?}: run finished before the checkpoint");

        let cfg = config(engine);
        let mut resumed = Session::new(mode(), &cfg, w.max_insts)
            .expect("session builds")
            .with_sampling((w.max_insts / 10).max(1));
        resumed.restore(&mid).unwrap_or_else(|e| panic!("{engine:?}: restore failed: {e}"));
        let out = resumed.run().expect("resumed session finishes");
        assert_eq!(reference.output.stats, out.output.stats, "{engine:?}: stats diverge");
        assert_eq!(
            reference.output.outcome, out.output.outcome,
            "{engine:?}: outcome diverges"
        );
        assert_eq!(reference.samples, out.samples, "{engine:?}: samples diverge");
    }
}

#[test]
fn a_checkpoint_from_one_kind_is_rejected_by_another() {
    let w = workload();
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(SEED)).expect("randomizes");
    let mode = || Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) };
    let (_, inorder_ckpt) = run(mode(), EngineKind::InOrder, w.max_insts);
    assert!(!inorder_ckpt.is_empty());
    for engine in [EngineKind::Ooo, EngineKind::Multicore { cores: 2 }] {
        let cfg = config(engine);
        let mut s = Session::new(mode(), &cfg, w.max_insts).expect("session builds");
        match s.restore(&inorder_ckpt) {
            Err(VcfrError::Checkpoint(CheckpointError::ContextMismatch)) => {}
            other => panic!("{engine:?}: expected a context mismatch, got {other:?}"),
        }
    }
}

#[test]
fn contention_appears_only_with_a_sibling_and_stays_contained() {
    let w = workload();
    let solo = run(Mode::Baseline(&w.image), EngineKind::Multicore { cores: 1 }, w.max_insts)
        .0
        .multicore
        .expect("breakdown");
    assert_eq!(solo.stats.contention_stall_cycles, 0, "solo core paid shared-port wait");

    let pair = run(Mode::Baseline(&w.image), EngineKind::Multicore { cores: 2 }, w.max_insts)
        .0
        .multicore
        .expect("breakdown");
    assert!(
        pair.stats.contention_stall_cycles > 0,
        "two cores over one L2 port never collided"
    );
    // The new identity: contention is only ever charged under memory
    // stalls, so it stays inside the audit's containment bound.
    let a = pair.stats.accounting();
    assert!(a.contention <= a.fetch_stall + a.load_stall + a.drc_walk, "containment violated");
    assert!(pair.stats.accounting().audit().passed(), "aggregate audit failed");
}
