//! Differential test for the superblock fast path: for every workload
//! and a matrix of configurations, a run with superblocks enabled must
//! be *bit-identical* to the same run with them disabled — same stats
//! snapshot, same architectural outcome, same interval samples, same
//! fault records, and same checkpoint bytes at a mid-run boundary.
//!
//! This is the contract `docs/superblocks.md` documents: the fast path
//! is a throughput optimization with no observable footprint.

use vcfr_core::DrcConfig;
use vcfr_rewriter::{randomize, RandomizeConfig};
use vcfr_sim::{FaultPlan, Mode, Session, SessionOutcome, SessionStatus, SimConfig};
use vcfr_workloads::Workload;

const SEED: u64 = 2015;

/// The four configurations of the differential matrix.
#[derive(Clone, Copy, Debug)]
enum Config {
    /// Baseline mode, no randomization.
    Base,
    /// VCFR with a 128-entry direct-mapped DRC.
    Vcfr128,
    /// VCFR with live re-randomization epochs.
    Rerand,
    /// VCFR with a scheduled fault-injection campaign.
    Faulted,
}

const CONFIGS: [Config; 4] = [Config::Base, Config::Vcfr128, Config::Rerand, Config::Faulted];

struct Run {
    outcome: SessionOutcome,
    mid_checkpoint: Vec<u8>,
}

/// Runs `w` under `c`, sampling ten intervals, checkpointing once
/// roughly a third of the way in, with the superblock path forced on
/// or off.
fn run(w: &Workload, c: Config, superblocks: bool) -> Run {
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(SEED)).unwrap();
    let cfg = match c {
        Config::Rerand => SimConfig { rerand_epoch: Some(40_000), ..SimConfig::default() },
        _ => SimConfig::default(),
    };
    let mode = match c {
        Config::Base => Mode::Baseline(&w.image),
        _ => Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
    };
    let mut s = Session::new(mode, &cfg, w.max_insts)
        .unwrap()
        .with_sampling((w.max_insts / 10).max(1))
        .with_superblocks(superblocks);
    if let Config::Faulted = c {
        s = s.with_faults(&FaultPlan::generate(SEED, 12, w.max_insts / 2));
    }
    // `max_insts` is a generous budget, not the actual run length: cap
    // the pre-checkpoint slice low enough that every workload is still
    // mid-flight when the checkpoint is taken.
    let mut mid_checkpoint = Vec::new();
    match s.run_for((w.max_insts / 3).min(20_000)) {
        Ok(SessionStatus::Running) => mid_checkpoint = s.checkpoint(),
        Ok(SessionStatus::Done(_)) => {}
        Err(e) => panic!("{}/{c:?}: {e}", w.name),
    }
    let outcome = s.run().unwrap_or_else(|e| panic!("{}/{c:?}: {e}", w.name));
    Run { outcome, mid_checkpoint }
}

fn assert_identical(w: &Workload, c: Config) {
    let on = run(w, c, true);
    let off = run(w, c, false);
    let tag = format!("{}/{c:?}", w.name);
    assert_eq!(on.outcome.output.stats, off.outcome.output.stats, "{tag}: stats diverge");
    assert_eq!(on.outcome.output.outcome, off.outcome.output.outcome, "{tag}: outcome diverges");
    assert_eq!(on.outcome.samples, off.outcome.samples, "{tag}: samples diverge");
    assert_eq!(on.outcome.records, off.outcome.records, "{tag}: fault records diverge");
    assert_eq!(on.outcome.faults, off.outcome.faults, "{tag}: fault stats diverge");
    assert_eq!(on.mid_checkpoint, off.mid_checkpoint, "{tag}: checkpoint bytes diverge");
}

/// A checkpoint taken under one setting must restore and finish
/// identically under the other (the toggle is not part of the context
/// fingerprint).
#[test]
fn checkpoints_interchange_across_the_toggle() {
    let w = vcfr_workloads::by_name("bzip2").unwrap();
    let on = run(&w, Config::Vcfr128, true);
    assert!(!on.mid_checkpoint.is_empty());

    let rp = randomize(&w.image, &RandomizeConfig::with_seed(SEED)).unwrap();
    let cfg = SimConfig::default();
    let mode = Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) };
    let mut resumed = Session::new(mode, &cfg, w.max_insts)
        .unwrap()
        .with_sampling((w.max_insts / 10).max(1))
        .with_superblocks(false);
    resumed.restore(&on.mid_checkpoint).unwrap();
    let out = resumed.run().unwrap();
    assert_eq!(out.output.stats, on.outcome.output.stats);
    assert_eq!(out.output.outcome, on.outcome.output.outcome);
    assert_eq!(out.samples, on.outcome.samples);
}

// One test per workload so failures localize and the matrix runs in
// parallel under the default test harness.
macro_rules! equiv {
    ($($test:ident => $name:literal),* $(,)?) => {
        $(
            #[test]
            fn $test() {
                let w = vcfr_workloads::by_name($name).unwrap();
                for c in CONFIGS {
                    assert_identical(&w, c);
                }
            }
        )*
    };
}

equiv! {
    equiv_bzip2 => "bzip2",
    equiv_gcc => "gcc",
    equiv_mcf => "mcf",
    equiv_hmmer => "hmmer",
    equiv_sjeng => "sjeng",
    equiv_libquantum => "libquantum",
    equiv_h264ref => "h264ref",
    equiv_lbm => "lbm",
    equiv_xalan => "xalan",
    equiv_namd => "namd",
    equiv_soplex => "soplex",
    equiv_memcpy => "memcpy",
    equiv_python => "python",
}
