//! End-to-end checkpoint/resume contract over a real workload: a
//! mid-run snapshot restored into a *freshly constructed* session must
//! finish with byte-identical results, and damaged or mismatched
//! snapshots must be rejected, never silently half-restored.

use vcfr_core::DrcConfig;
use vcfr_rewriter::{randomize, RandomizeConfig};
use vcfr_sim::{
    CheckpointError, Mode, Session, SessionStatus, SimConfig, VcfrError, CHECKPOINT_MAGIC,
};
use vcfr_workloads::by_name;

const BUDGET: u64 = 40_000;

fn cfg() -> SimConfig {
    SimConfig { rerand_epoch: Some(9_000), ..SimConfig::default() }
}

/// A VCFR session over the bzip2 workload with sampling on — the same
/// shape the batch service runs.
fn fresh(rp: &vcfr_rewriter::RandomizedProgram) -> Session<'_> {
    Session::new(
        Mode::Vcfr { program: rp, drc: DrcConfig::direct_mapped(64) },
        &cfg(),
        BUDGET,
    )
    .expect("session builds")
    .with_sampling(BUDGET / 10)
}

#[test]
fn mid_run_snapshot_resumes_bit_identically() {
    let w = by_name("bzip2").expect("bzip2 exists");
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(7)).expect("randomizes");

    let mut straight = fresh(&rp);
    let reference = straight.run().expect("straight run finishes");

    let mut first = fresh(&rp);
    assert!(
        matches!(first.run_for(12_000).expect("chunk runs"), SessionStatus::Running),
        "the snapshot is taken mid-run, not after completion"
    );
    let snap = first.checkpoint();
    assert_eq!(&snap[..8], &CHECKPOINT_MAGIC[..], "envelope leads with the magic");
    drop(first);

    let mut resumed = fresh(&rp);
    resumed.restore(&snap).expect("snapshot restores");
    let out = resumed.run().expect("resumed run finishes");

    assert_eq!(out.output.stats, reference.output.stats);
    assert_eq!(out.output.outcome, reference.output.outcome);
    assert_eq!(out.samples, reference.samples);

    // Byte-level identity, not just field equality: the final engine
    // snapshots of the two histories serialize to the same bytes.
    assert_eq!(straight.checkpoint(), resumed.checkpoint());
}

#[test]
fn corrupted_snapshots_are_rejected() {
    let w = by_name("bzip2").expect("bzip2 exists");
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(7)).expect("randomizes");
    let mut s = fresh(&rp);
    s.run_for(8_000).expect("chunk runs");
    let snap = s.checkpoint();

    // A flipped payload byte fails the integrity hash.
    let mut bad = snap.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x01;
    assert!(matches!(
        fresh(&rp).restore(&bad),
        Err(VcfrError::Checkpoint(CheckpointError::Corrupt))
    ));

    // A damaged magic never reaches the payload at all.
    let mut bad = snap.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        fresh(&rp).restore(&bad),
        Err(VcfrError::Checkpoint(CheckpointError::Wire(_)))
    ));

    // Truncation is detected, not read past.
    let short = &snap[..snap.len() - 3];
    assert!(fresh(&rp).restore(short).is_err());
}

#[test]
fn version_and_context_mismatches_are_rejected() {
    let w = by_name("bzip2").expect("bzip2 exists");
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(7)).expect("randomizes");
    let mut s = fresh(&rp);
    s.run_for(8_000).expect("chunk runs");
    let snap = s.checkpoint();

    // The version lives right after the magic; a future format must be
    // refused with the found version, per the policy in docs/service.md.
    let mut future = snap.clone();
    future[8] += 1;
    match fresh(&rp).restore(&future) {
        Err(VcfrError::Checkpoint(CheckpointError::Version { found })) => {
            assert_eq!(found, vcfr_sim::CHECKPOINT_VERSION + 1);
        }
        other => panic!("expected a version rejection, got {other:?}"),
    }

    // A session with a different configuration refuses the snapshot.
    let mut other = Session::new(
        Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
        &cfg(),
        BUDGET,
    )
    .expect("session builds")
    .with_sampling(BUDGET / 10);
    assert!(matches!(
        other.restore(&snap),
        Err(VcfrError::Checkpoint(CheckpointError::ContextMismatch))
    ));
}
