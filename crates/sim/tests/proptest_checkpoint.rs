//! Property test tying the randomization parameter surface into the
//! checkpoint contract: a mid-run snapshot restores bit-identically
//! into a session built at the *same* parameter point, and any session
//! built at a *different* point refuses it with a context mismatch —
//! for every valid `RandParams`, not just the defaults.

use proptest::prelude::*;
use vcfr_core::{DrcConfig, RandParams};
use vcfr_rewriter::{randomize, RandomizeConfig};
use vcfr_sim::{CheckpointError, Mode, Session, SessionStatus, SimConfig, VcfrError};
use vcfr_workloads::by_name;

const BUDGET: u64 = 20_000;

/// Small valid parameter points (kept cheap: every case runs real
/// simulations).
fn arb_params() -> impl Strategy<Value = RandParams> {
    (
        (12u32..17, 1u32..5),
        (
            prop_oneof![Just(None), (4_000u64..9_000).prop_map(Some)],
            prop_oneof![Just(32usize), Just(64usize), Just(128usize)],
        ),
    )
        .prop_map(|((entropy_bits, sparsity), (rerand_epoch, entries))| RandParams {
            entropy_bits,
            sparsity,
            rerand_epoch,
            drc: DrcConfig::direct_mapped(entries),
        })
}

fn session<'a>(
    rp: &'a vcfr_rewriter::RandomizedProgram,
    cfg: &SimConfig,
    params: &RandParams,
) -> Session<'a> {
    Session::new(Mode::Vcfr { program: rp, drc: params.drc }, cfg, BUDGET)
        .expect("session builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn snapshots_bind_to_their_parameter_point(p in arb_params(), q in arb_params()) {
        let w = by_name("mcf").expect("mcf exists");
        let rp = randomize(&w.image, &RandomizeConfig::from_params(7, &p))
            .expect("randomizes");
        let cfg = SimConfig::builder().rand_params(Some(p)).build().expect("valid params");

        // Snapshot mid-run, then restore into an identically-built
        // session: the continuation must be bit-identical to never
        // having stopped.
        let mut reference = session(&rp, &cfg, &p);
        let straight = reference.run().expect("straight run finishes");

        let mut first = session(&rp, &cfg, &p);
        prop_assert!(matches!(
            first.run_for(BUDGET / 2).expect("chunk runs"),
            SessionStatus::Running
        ));
        let snap = first.checkpoint();

        let mut resumed = session(&rp, &cfg, &p);
        resumed.restore(&snap).expect("same parameter point restores");
        let out = resumed.run().expect("resumed run finishes");
        prop_assert_eq!(&out.output.stats, &straight.output.stats);
        prop_assert_eq!(reference.checkpoint(), resumed.checkpoint());

        // A session at any *other* parameter point refuses the bytes:
        // the params are folded into the VCFRCKP1 context fingerprint.
        if p != q {
            let rq = randomize(&w.image, &RandomizeConfig::from_params(7, &q))
                .expect("randomizes");
            let cfg_q = SimConfig::builder().rand_params(Some(q)).build().expect("valid params");
            let mut other = session(&rq, &cfg_q, &q);
            prop_assert!(matches!(
                other.restore(&snap),
                Err(VcfrError::Checkpoint(CheckpointError::ContextMismatch))
            ));
        }
    }
}
