//! A self-contained stand-in for the subset of the `proptest` crate this
//! workspace's property tests use, so the build has no network
//! dependency.
//!
//! Supported surface: the [`Strategy`] trait with `prop_map`, range and
//! tuple strategies, [`Just`], [`any`], `proptest::collection::{vec,
//! btree_map}`, and the `proptest!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!` macros. Each test runs `ProptestConfig::cases`
//! deterministic cases; there is no shrinking — a failure reports the
//! case number so it can be replayed (cases are seeded by index).

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property within a generated case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case number `case` — fully determined by the
    /// case index, so failures replay.
    pub fn for_case(case: u32) -> TestRng {
        TestRng { state: 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1) ^ 0x5851_f42d_4c95_7f2d }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Widening-multiply mapping; bias is irrelevant for test-case
        // generation.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy for use in heterogeneous unions ([`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies of one value type ([`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union over the given arms (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )+
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Arbitrary full-range values for primitives ([`any`]).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy generating any value of `T` (see [`any`]).
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy over a primitive's full range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{BTreeMap, Range, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap` with distinct keys.
    #[derive(Clone, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        len: Range<usize>,
    }

    /// `proptest::collection::btree_map`: maps of `len` entries (fewer
    /// if key draws collide, never below one when `len` starts ≥ 1,
    /// because draws retry until at least one insertion succeeds).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        len: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, len }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.len.clone().generate(rng);
            let mut m = BTreeMap::new();
            for _ in 0..n {
                m.insert(self.key.generate(rng), self.value.generate(rng));
            }
            while m.len() < self.len.start {
                m.insert(self.key.generate(rng), self.value.generate(rng));
            }
            m
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests. Each `#[test] fn name(pat in strategy, ..)
/// { .. }` item becomes a test running `ProptestConfig::cases`
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(__case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let mut __body = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = __body() {
                    panic!("proptest case {} of {}: {}", __case, __cfg.cases, e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}` ({} != {})",
                        l,
                        r,
                        stringify!($left),
                        stringify!($right)
                    )));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let s = (0usize..3).generate(&mut rng);
            assert!(s < 3);
            let i = (-4i32..4).generate(&mut rng);
            assert!((-4..4).contains(&i));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::TestRng::for_case(1);
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 1..9).generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 9);
        }
    }

    #[test]
    fn btree_map_meets_minimum_len() {
        let mut rng = crate::TestRng::for_case(2);
        for _ in 0..100 {
            let m = crate::collection::btree_map(0u32..4, 0u32..100, 3..5).generate(&mut rng);
            assert!(m.len() >= 3, "len {}", m.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_round_trip(x in 0u32..100, mut v in crate::collection::vec(any::<u8>(), 0..8)) {
            v.push(x as u8);
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.last().copied(), Some(x as u8));
        }

        #[test]
        fn oneof_generates_every_arm(picks in crate::collection::vec(
            prop_oneof![Just(1u32), Just(2), (10u32..12).prop_map(|x| x)],
            64..65,
        )) {
            for p in picks {
                prop_assert!(p == 1 || p == 2 || p == 10 || p == 11);
            }
        }
    }
}
