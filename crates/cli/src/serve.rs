//! The service-facing subcommands: `vcfr serve` runs the daemon,
//! `vcfr submit` / `vcfr jobs` / `vcfr top` / `vcfr shutdown` talk to
//! it.

use crate::args::Args;
use crate::commands::CliError;
use std::fmt::Write as _;
use std::path::PathBuf;
use vcfr_obs::Json;
use vcfr_service::{serve, Client, JobSpec, ServeOptions};

fn state_dir(args: &Args) -> PathBuf {
    PathBuf::from(args.value("dir").unwrap_or("results/service"))
}

/// `vcfr serve [--dir D] [--port P] [--workers N] [--queue N]` — runs
/// the batch-simulation daemon until a client asks it to shut down.
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let opts = ServeOptions {
        dir: state_dir(args),
        port: args.u64_or("port", 0)? as u16,
        workers: args.u64_or("workers", 2)? as usize,
        queue_capacity: args.u64_or("queue", 16)? as usize,
    };
    serve(&opts)?;
    Ok(format!("service stopped; state in {}", opts.dir.display()))
}

/// `vcfr submit <workload> [--mode M] [--drc N] [--max N] [--seed N]
/// [--rerand-epoch N] [--checkpoint-every N] [--scale N] [--cores N]
/// [--dir D] [--ooo] [--faults] [--watch]`.
pub fn cmd_submit(args: &Args) -> Result<String, CliError> {
    let mut spec = JobSpec::new(args.positional(0, "workload name")?);
    spec.faults = args.flag("faults");
    let cores = args.u64_or("cores", 1)?;
    if args.flag("ooo") && cores > 1 {
        return Err(CliError::Msg("--ooo and --cores are different engines; pick one".into()));
    }
    if args.flag("ooo") {
        spec.engine = vcfr_sim::EngineKind::Ooo;
    } else if cores != 1 {
        spec.engine = vcfr_sim::EngineKind::Multicore { cores: cores as u32 };
    }
    // `--mode` takes both the canonical (`base`/`vcfr128`) and the
    // historical (`baseline`/`vcfr` + `--drc`) vocabularies.
    let drc = args.u64_or("drc", vcfr_bench::DEFAULT_DRC_ENTRIES as u64)? as usize;
    spec.mode = vcfr_bench::ModeSpec::from_wire(args.value("mode").unwrap_or("vcfr"), drc)
        .map_err(|e| CliError::Msg(e.to_string()))?;
    spec.max_insts = args.u64_or("max", spec.max_insts)?;
    spec.seed = args.u64_or("seed", spec.seed)?;
    spec.checkpoint_every = args.u64_or("checkpoint-every", spec.checkpoint_every)?;
    spec.scale = args.u64_or("scale", spec.scale)?;
    if args.value("rerand-epoch").is_some() {
        spec.rerand_epoch = Some(args.u64_or("rerand-epoch", 0)?);
    }
    spec.validate()?;

    let mut client = Client::connect(&state_dir(args))?;
    let id = client.submit(&spec)?;
    let mut out = format!("job {id} submitted: {} {}", spec.workload, spec.mode);
    if args.flag("watch") {
        // Event-driven: the daemon pushes `progress` lines as the
        // job's telemetry tap fires and `status` lines on phase
        // changes; between events its watch loop sleeps with capped
        // exponential backoff, so neither side polls on a fixed tick.
        out.push('\n');
        client.watch(id, |ev| {
            let _ = writeln!(out, "  {}", render_watch_event(id, ev));
        })?;
        out.pop();
    }
    Ok(out)
}

/// One human-readable line per watch event (`progress` or `status`).
fn render_watch_event(id: u64, ev: &Json) -> String {
    let num = |k: &str| ev.get(k).and_then(Json::as_u64).unwrap_or(0);
    match ev.get("event").and_then(Json::as_str) {
        Some("progress") => {
            let insts = num("instructions");
            let max = num("max_insts").max(1);
            let cycles = num("cycles");
            let sb_insts = ev.get_path("superblock.insts").and_then(Json::as_u64).unwrap_or(0);
            format!(
                "job {id}: {insts}/{max} insts ({:.0}%)  ipc {:.3}  sb {:.1}%",
                insts as f64 / max as f64 * 100.0,
                if cycles == 0 { 0.0 } else { insts as f64 / cycles as f64 },
                sb_insts as f64 / insts.max(1) as f64 * 100.0,
            )
        }
        _ => {
            let phase = ev.get("phase").and_then(Json::as_str).unwrap_or("?");
            match ev.get("error").and_then(Json::as_str) {
                Some(e) => format!("job {id}: {phase} at {} instructions  error: {e}", num("instructions")),
                None => format!("job {id}: {phase} at {} instructions", num("instructions")),
            }
        }
    }
}

/// `vcfr jobs [--dir D]` — lists every job the daemon knows about.
pub fn cmd_jobs(args: &Args) -> Result<String, CliError> {
    let mut client = Client::connect(&state_dir(args))?;
    let jobs = client.jobs()?;
    if jobs.is_empty() {
        return Ok("no jobs".to_string());
    }
    let mut out = format!(
        "{:>4}  {:<12} {:<10} {:<8} {:>14}/{:<14} {:>6}\n",
        "id", "workload", "mode", "phase", "insts", "budget", "ckpts"
    );
    for j in &jobs {
        let field = |k: &str| j.get(k).and_then(|v| v.as_str()).unwrap_or("?").to_string();
        let num = |k: &str| j.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        let _ = writeln!(
            out,
            "{:>4}  {:<12} {:<10} {:<8} {:>14}/{:<14} {:>6}{}",
            num("id"),
            field("workload"),
            field("mode"),
            field("phase"),
            num("instructions"),
            num("max_insts"),
            num("checkpoints"),
            match j.get("error").and_then(|v| v.as_str()) {
                Some(e) => format!("  error: {e}"),
                None => String::new(),
            },
        );
    }
    out.pop();
    Ok(out)
}

/// Renders one frame of the `vcfr top` dashboard from a `metrics`
/// response body — also reused by `vcfr fleet top`, whose aggregated
/// body has the same shape (`title` names the surface).
pub(crate) fn render_top(title: &str, m: &Json) -> String {
    let num = |path: &str| m.get_path(path).and_then(Json::as_u64).unwrap_or(0);
    let fnum = |path: &str| m.get_path(path).and_then(Json::as_f64).unwrap_or(0.0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{title} — up {:.0}s  |  queue {}/{} waiting, {} in flight",
        fnum("uptime_secs"),
        num("queue.depth"),
        num("queue.capacity"),
        num("queue.in_flight"),
    );
    let _ = writeln!(
        out,
        "jobs: {} queued  {} running  {} done  {} failed",
        num("jobs.queued"),
        num("jobs.running"),
        num("jobs.done"),
        num("jobs.failed"),
    );
    let _ = writeln!(
        out,
        "throughput: {} insts retired  ({:.2}M insts/s)  |  {} progress events",
        num("throughput.instructions"),
        fnum("throughput.insts_per_sec") / 1e6,
        num("progress_events"),
    );
    if let Some(workers) = m.get("workers").and_then(Json::as_arr) {
        for (i, w) in workers.iter().enumerate() {
            let util = w.get("utilization").and_then(Json::as_f64).unwrap_or(0.0);
            let bars = (util * 20.0).round() as usize;
            let _ = writeln!(
                out,
                "worker {i}: [{:<20}] {:>5.1}%  {} jobs  busy {:.1}s",
                "#".repeat(bars.min(20)),
                util * 100.0,
                w.get("jobs").and_then(Json::as_u64).unwrap_or(0),
                w.get("busy_secs").and_then(Json::as_f64).unwrap_or(0.0),
            );
        }
    }
    let lat = |k: &str| m.get_path(&format!("job_latency_ms.{k}")).and_then(Json::as_u64);
    if let (Some(n), Some(min), Some(max)) = (lat("count"), lat("min"), lat("max")) {
        let sum = lat("sum").unwrap_or(0);
        let _ = writeln!(
            out,
            "job latency: {n} finished  min {min}ms  mean {:.0}ms  max {max}ms",
            sum as f64 / n.max(1) as f64,
        );
    }
    out.pop();
    out
}

/// `vcfr top [--dir D] [--interval MS] [--count N] [--once]` — a
/// polling dashboard over the daemon's `metrics` endpoint: queue
/// occupancy, per-worker utilization, job phases, throughput totals
/// and the job-latency histogram. `--once` prints a single frame and
/// exits (scripting-friendly); otherwise the terminal is redrawn every
/// `--interval` milliseconds (default 1000), `--count` times (default:
/// until the daemon goes away).
pub fn cmd_top(args: &Args) -> Result<String, CliError> {
    let dir = state_dir(args);
    let interval = args.u64_or("interval", 1_000)?;
    let once = args.flag("once");
    let frames = if once { 1 } else { args.u64_or("count", u64::MAX)? };
    let mut client = Client::connect(&dir)?;
    let mut n = 0u64;
    loop {
        let metrics = client.metrics()?;
        let frame = render_top("vcfr serve", &metrics);
        n += 1;
        if n >= frames {
            return Ok(frame);
        }
        // Clear + home between frames so the dashboard redraws in
        // place (plain prints under --once / --count 1 keep the output
        // pipe-friendly).
        println!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::Write::flush(&mut std::io::stdout());
        std::thread::sleep(std::time::Duration::from_millis(interval.max(100)));
    }
}

/// `vcfr shutdown [--dir D]` — asks the daemon to checkpoint every
/// in-flight job and exit.
pub fn cmd_shutdown(args: &Args) -> Result<String, CliError> {
    let mut client = Client::connect(&state_dir(args))?;
    client.shutdown()?;
    Ok("shutdown requested; in-flight jobs checkpointed".to_string())
}
