//! The service-facing subcommands: `vcfr serve` runs the daemon,
//! `vcfr submit` / `vcfr jobs` / `vcfr shutdown` talk to it.

use crate::args::Args;
use crate::commands::CliError;
use std::fmt::Write as _;
use std::path::PathBuf;
use vcfr_service::{serve, Client, JobSpec, ServeOptions};

fn state_dir(args: &Args) -> PathBuf {
    PathBuf::from(args.value("dir").unwrap_or("results/service"))
}

/// `vcfr serve [--dir D] [--port P] [--workers N] [--queue N]` — runs
/// the batch-simulation daemon until a client asks it to shut down.
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let opts = ServeOptions {
        dir: state_dir(args),
        port: args.u64_or("port", 0)? as u16,
        workers: args.u64_or("workers", 2)? as usize,
        queue_capacity: args.u64_or("queue", 16)? as usize,
    };
    serve(&opts)?;
    Ok(format!("service stopped; state in {}", opts.dir.display()))
}

/// `vcfr submit <workload> [--mode M] [--drc N] [--max N] [--seed N]
/// [--rerand-epoch N] [--checkpoint-every N] [--scale N] [--dir D]
/// [--watch]`.
pub fn cmd_submit(args: &Args) -> Result<String, CliError> {
    let mut spec = JobSpec::new(args.positional(0, "workload name")?);
    if let Some(mode) = args.value("mode") {
        spec.mode = mode.to_string();
    }
    spec.drc_entries = args.u64_or("drc", spec.drc_entries as u64)? as usize;
    spec.max_insts = args.u64_or("max", spec.max_insts)?;
    spec.seed = args.u64_or("seed", spec.seed)?;
    spec.checkpoint_every = args.u64_or("checkpoint-every", spec.checkpoint_every)?;
    spec.scale = args.u64_or("scale", spec.scale)?;
    if args.value("rerand-epoch").is_some() {
        spec.rerand_epoch = Some(args.u64_or("rerand-epoch", 0)?);
    }
    spec.validate()?;

    let mut client = Client::connect(&state_dir(args))?;
    let id = client.submit(&spec)?;
    let mut out = format!("job {id} submitted: {} {}", spec.workload, spec.mode);
    if args.flag("watch") {
        out.push('\n');
        client.watch(id, |ev| {
            let insts = ev.get("instructions").and_then(|v| v.as_u64()).unwrap_or(0);
            let phase = ev.get("phase").and_then(|v| v.as_str()).unwrap_or("?");
            let _ = writeln!(out, "  job {id}: {phase} at {insts} instructions");
        })?;
        out.pop();
    }
    Ok(out)
}

/// `vcfr jobs [--dir D]` — lists every job the daemon knows about.
pub fn cmd_jobs(args: &Args) -> Result<String, CliError> {
    let mut client = Client::connect(&state_dir(args))?;
    let jobs = client.jobs()?;
    if jobs.is_empty() {
        return Ok("no jobs".to_string());
    }
    let mut out = format!(
        "{:>4}  {:<12} {:<10} {:<8} {:>14}/{:<14} {:>6}\n",
        "id", "workload", "mode", "phase", "insts", "budget", "ckpts"
    );
    for j in &jobs {
        let field = |k: &str| j.get(k).and_then(|v| v.as_str()).unwrap_or("?").to_string();
        let num = |k: &str| j.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        let _ = writeln!(
            out,
            "{:>4}  {:<12} {:<10} {:<8} {:>14}/{:<14} {:>6}{}",
            num("id"),
            field("workload"),
            field("mode"),
            field("phase"),
            num("instructions"),
            num("max_insts"),
            num("checkpoints"),
            match j.get("error").and_then(|v| v.as_str()) {
                Some(e) => format!("  error: {e}"),
                None => String::new(),
            },
        );
    }
    out.pop();
    Ok(out)
}

/// `vcfr shutdown [--dir D]` — asks the daemon to checkpoint every
/// in-flight job and exit.
pub fn cmd_shutdown(args: &Args) -> Result<String, CliError> {
    let mut client = Client::connect(&state_dir(args))?;
    client.shutdown()?;
    Ok("shutdown requested; in-flight jobs checkpointed".to_string())
}
