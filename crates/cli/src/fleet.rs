//! The fleet-facing subcommands: `vcfr fleet serve` runs the
//! coordinator, `vcfr fleet join` runs a worker daemon that registers
//! with it, and `vcfr fleet submit` / `status` / `top` / `shutdown`
//! talk to the coordinator. See `docs/fleet.md` for the runbook.

use crate::args::Args;
use crate::commands::CliError;
use crate::serve::render_top;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;
use vcfr_bench::{shard_campaign, shard_matrix};
use vcfr_obs::{Backoff, Json};
use vcfr_service::{serve, serve_fleet, Client, FleetOptions, JobSpec, ServeOptions};

fn fleet_dir(args: &Args) -> PathBuf {
    PathBuf::from(args.value("fleet").unwrap_or("results/fleet"))
}

/// `vcfr fleet serve [--fleet D] [--port P] [--chunks N]
/// [--heartbeat-ms N] [--heartbeat-cap-ms N] [--lost-after N]` — runs
/// the coordinator until a client asks it to shut down.
pub fn cmd_fleet_serve(args: &Args) -> Result<String, CliError> {
    let defaults = FleetOptions::default();
    let opts = FleetOptions {
        dir: fleet_dir(args),
        port: args.u64_or("port", 0)? as u16,
        chunk_capacity: args.u64_or("chunks", defaults.chunk_capacity as u64)? as usize,
        heartbeat_ms: args.u64_or("heartbeat-ms", defaults.heartbeat_ms)?,
        heartbeat_cap_ms: args.u64_or("heartbeat-cap-ms", defaults.heartbeat_cap_ms)?,
        lost_after: args.u64_or("lost-after", u64::from(defaults.lost_after))? as u32,
    };
    serve_fleet(&opts)?;
    Ok(format!(
        "fleet stopped; merged manifests in {}",
        opts.dir.join("results").join("manifests").display()
    ))
}

/// `vcfr fleet join --fleet D --dir W [--slots N] [--port P]
/// [--workers N] [--queue N]` — runs a worker daemon and registers it
/// with the coordinator. The registration happens on a side thread the
/// moment the daemon publishes its endpoint file, with capped backoff
/// retries, so it does not matter whether the coordinator or the
/// worker starts first.
pub fn cmd_fleet_join(args: &Args) -> Result<String, CliError> {
    let Some(worker_dir) = args.value("dir") else {
        return Err(CliError::Msg("fleet join needs --dir (the worker's state directory)".into()));
    };
    let opts = ServeOptions {
        dir: PathBuf::from(worker_dir),
        port: args.u64_or("port", 0)? as u16,
        workers: args.u64_or("workers", 2)? as usize,
        queue_capacity: args.u64_or("queue", 16)? as usize,
    };
    let slots = args.u64_or("slots", opts.workers as u64)?.max(1);
    let coordinator = fleet_dir(args);
    let my_dir = opts.dir.clone();
    std::thread::spawn(move || {
        // Wait for our own daemon to publish its endpoint, then keep
        // trying to register until the coordinator accepts us.
        let mut wait = Backoff::new(Duration::from_millis(50), Duration::from_secs(1));
        let endpoint = my_dir.join(vcfr_service::ENDPOINT_FILE);
        while !endpoint.exists() {
            std::thread::sleep(wait.step());
        }
        let dir = std::fs::canonicalize(&my_dir).unwrap_or(my_dir);
        wait.reset();
        loop {
            if let Ok(mut c) = Client::connect(&coordinator) {
                if c.register(&dir, slots).is_ok() {
                    return;
                }
            }
            std::thread::sleep(wait.step());
        }
    });
    serve(&opts)?;
    Ok(format!("worker stopped; state in {}", opts.dir.display()))
}

/// `vcfr fleet submit [--fleet D] --apps a,b,c [--modes m1,m2 |
/// --campaign] [--max N] [--scale N] [--checkpoint-every N]` — shards
/// an experiment matrix (or the fault campaign) into job chunks and
/// submits each to the coordinator.
pub fn cmd_fleet_submit(args: &Args) -> Result<String, CliError> {
    let Some(apps) = args.value("apps") else {
        return Err(CliError::Msg("fleet submit needs --apps (comma-separated workloads)".into()));
    };
    let apps: Vec<&str> = apps.split(',').map(str::trim).filter(|a| !a.is_empty()).collect();
    let max = match args.value("max") {
        Some(_) => Some(args.u64_or("max", 0)?),
        None => None,
    };
    let checkpoint_every = args.u64_or("checkpoint-every", JobSpec::new("x").checkpoint_every)?;
    let cells = if args.flag("campaign") {
        shard_campaign(&apps, max, checkpoint_every)
    } else {
        let modes_raw = args.value("modes").unwrap_or("base,naive,vcfr512,vcfr128,vcfr64");
        let modes: Vec<&str> =
            modes_raw.split(',').map(str::trim).filter(|m| !m.is_empty()).collect();
        shard_matrix(&apps, &modes, max, args.u64_or("scale", 1)?, checkpoint_every)
    }
    .map_err(CliError::Msg)?;

    let mut client = Client::connect(&fleet_dir(args))?;
    let mut out = String::new();
    for cell in &cells {
        let spec = JobSpec::from_cell(cell)?;
        let id = client.submit(&spec)?;
        let _ = writeln!(out, "chunk {id} submitted: {}", spec.manifest_file_name());
    }
    let _ = write!(out, "{} chunks submitted", cells.len());
    Ok(out)
}

/// Renders the fleet section of `status` / `top`: worker liveness, the
/// chunk phase counts, and the recovery tallies.
fn render_fleet(f: &Json) -> String {
    let num = |path: &str| f.get_path(path).and_then(Json::as_u64).unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chunks: {} pending  {} dispatched  {} done  {} failed  ({} total)",
        num("chunks.pending"),
        num("chunks.dispatched"),
        num("chunks.done"),
        num("chunks.failed"),
        num("chunks.total"),
    );
    let _ = writeln!(
        out,
        "recovery: {} manifests salvaged  {} chunks resumed  {} restarted",
        num("recovery.manifests"),
        num("recovery.resumed"),
        num("recovery.restarted"),
    );
    for w in f.get("workers").and_then(Json::as_arr).unwrap_or(&[]) {
        let n = |k: &str| w.get(k).and_then(Json::as_u64).unwrap_or(0);
        let _ = writeln!(
            out,
            "node {}: {:<5} {} in flight / {} slots  {} done{}  {}",
            n("id"),
            if matches!(w.get("alive"), Some(Json::Bool(true))) { "alive" } else { "LOST" },
            n("in_flight"),
            n("slots"),
            n("done"),
            if n("misses") > 0 { format!("  ({} missed beats)", n("misses")) } else { String::new() },
            w.get("dir").and_then(Json::as_str).unwrap_or("?"),
        );
    }
    out.pop();
    out
}

/// `vcfr fleet status [--fleet D] [--json]` — the coordinator's view of
/// its workers and chunks.
pub fn cmd_fleet_status(args: &Args) -> Result<String, CliError> {
    let mut client = Client::connect(&fleet_dir(args))?;
    let fleet = client.fleet_status()?;
    if args.flag("json") {
        return Ok(fleet.pretty());
    }
    let mut out = render_fleet(&fleet);
    out.push('\n');
    for c in fleet.get("chunk_list").and_then(Json::as_arr).unwrap_or(&[]) {
        let n = |k: &str| c.get(k).and_then(Json::as_u64).unwrap_or(0);
        let s = |k: &str| c.get(k).and_then(Json::as_str).unwrap_or("?");
        let _ = writeln!(
            out,
            "chunk {:>3}  {:<10}  {}{}{}",
            n("id"),
            s("phase"),
            s("file"),
            if n("redispatches") > 0 {
                format!("  redispatched x{}", n("redispatches"))
            } else {
                String::new()
            },
            match c.get("error").and_then(Json::as_str) {
                Some(e) => format!("  error: {e}"),
                None => String::new(),
            },
        );
    }
    out.pop();
    Ok(out)
}

/// `vcfr fleet top [--fleet D] [--interval MS] [--count N] [--once]` —
/// the `vcfr top` dashboard over the coordinator's aggregated metrics
/// (every node's queues, throughput and latency histograms merged),
/// plus the fleet section: worker liveness and chunk phases.
pub fn cmd_fleet_top(args: &Args) -> Result<String, CliError> {
    let dir = fleet_dir(args);
    let interval = args.u64_or("interval", 1_000)?;
    let frames = if args.flag("once") { 1 } else { args.u64_or("count", u64::MAX)? };
    let mut client = Client::connect(&dir)?;
    let mut n = 0u64;
    loop {
        let metrics = client.metrics()?;
        let mut frame = render_top("vcfr fleet", &metrics);
        let _ = write!(frame, "\nnodes: {}", metrics.get("nodes").and_then(Json::as_u64).unwrap_or(0));
        if let Some(f) = metrics.get("fleet") {
            frame.push('\n');
            frame.push_str(&render_fleet(f));
        }
        n += 1;
        if n >= frames {
            return Ok(frame);
        }
        println!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::Write::flush(&mut std::io::stdout());
        std::thread::sleep(Duration::from_millis(interval.max(100)));
    }
}

/// `vcfr fleet shutdown [--fleet D] [--keep-workers]` — stops the
/// coordinator; by default it also shuts down every registered worker
/// daemon (pass `--keep-workers` to leave them draining their local
/// queues).
pub fn cmd_fleet_shutdown(args: &Args) -> Result<String, CliError> {
    let mut client = Client::connect(&fleet_dir(args))?;
    client.shutdown_fleet(!args.flag("keep-workers"))?;
    Ok(if args.flag("keep-workers") {
        "fleet shutdown requested; workers left running".to_string()
    } else {
        "fleet shutdown requested; workers stopped".to_string()
    })
}
