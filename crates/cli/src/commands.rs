//! The CLI commands. Each command is a plain function from parsed
//! arguments to a rendered report string, so they are directly testable.

use crate::args::{Args, ArgsError};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use vcfr_bench::{rand_params_json, ModeSpec};
use vcfr_core::{DrcConfig, RandParams};
use vcfr_gadget::{AttackSurface, Capability};
use vcfr_isa::{Image, Machine, IMAGE_MAGIC};
use vcfr_rewriter::{
    analyze_control_flow, disassemble, randomize, Cfg, RandomizeConfig, RandomizedProgram,
    PROGRAM_MAGIC,
};
use vcfr_obs::{fingerprint, CycleAccounting, Json, Manifest};
use vcfr_sim::{EngineKind, Mode, OooConfig, Session, SimConfig, SimStats, VcfrError};

/// A CLI failure. Usage mistakes exit with status 2, everything else
/// with status 1; simulation-stack failures stay typed all the way to
/// the exit-code decision instead of being flattened into strings.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself was malformed.
    Usage(ArgsError),
    /// The simulation stack failed (config, run, or checkpoint).
    Vcfr(VcfrError),
    /// The batch-simulation service failed (daemon or client side).
    Service(vcfr_service::ServiceError),
    /// Any other failure, already rendered for the user.
    Msg(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(e) => write!(f, "{e}"),
            CliError::Vcfr(e) => write!(f, "{e}"),
            CliError::Service(e) => write!(f, "{e}"),
            CliError::Msg(s) => f.write_str(s),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Usage(e) => Some(e),
            CliError::Vcfr(e) => Some(e),
            CliError::Service(e) => Some(e),
            CliError::Msg(_) => None,
        }
    }
}

impl From<vcfr_service::ServiceError> for CliError {
    fn from(e: vcfr_service::ServiceError) -> CliError {
        CliError::Service(e)
    }
}

impl From<ArgsError> for CliError {
    fn from(e: ArgsError) -> CliError {
        CliError::Usage(e)
    }
}

impl From<VcfrError> for CliError {
    fn from(e: VcfrError) -> CliError {
        CliError::Vcfr(e)
    }
}

fn fail(msg: impl Into<String>) -> CliError {
    CliError::Msg(msg.into())
}

/// Either kind of on-disk artefact.
pub enum Artefact {
    /// A plain program image.
    Image(Image),
    /// A randomized program (image pair + tables).
    Randomized(Box<RandomizedProgram>),
}

/// Loads a file, dispatching on its magic header.
///
/// # Errors
///
/// I/O failures and unknown/corrupt formats.
pub fn load(path: &str) -> Result<Artefact, CliError> {
    let bytes =
        fs::read(Path::new(path)).map_err(|e| fail(format!("cannot read {path}: {e}")))?;
    if bytes.len() >= 8 && bytes[..8] == IMAGE_MAGIC {
        return Ok(Artefact::Image(
            Image::from_bytes(&bytes).map_err(|e| fail(format!("{path}: {e}")))?,
        ));
    }
    if bytes.len() >= 8 && bytes[..8] == PROGRAM_MAGIC {
        return Ok(Artefact::Randomized(Box::new(
            RandomizedProgram::from_bytes(&bytes).map_err(|e| fail(format!("{path}: {e}")))?,
        )));
    }
    Err(fail(format!("{path}: not a VCFR image or randomized program")))
}

fn load_image(path: &str) -> Result<Image, CliError> {
    match load(path)? {
        Artefact::Image(img) => Ok(img),
        Artefact::Randomized(rp) => Ok(rp.original),
    }
}

/// `vcfr build <workload> -o <file> [--scale N]` — builds a named
/// synthetic workload (with its outer repeat count multiplied by
/// `--scale`) and writes its image.
pub fn cmd_build(args: &Args) -> Result<String, CliError> {
    let name = args.positional(0, "workload name")?;
    let out = args.value("o").ok_or_else(|| fail("missing -o/--o output path"))?;
    let scale = args.u64_or("scale", 1)?;
    let w = vcfr_workloads::by_name_scaled(name, scale).ok_or_else(|| {
        fail(format!("unknown workload {name:?}; known: {:?}", vcfr_workloads::SPEC_NAMES))
    })?;
    let bytes = w.image.to_bytes();
    fs::write(out, &bytes).map_err(|e| fail(format!("cannot write {out}: {e}")))?;
    Ok(format!(
        "wrote {} ({} bytes, text {} bytes, {} symbols) — {}",
        out,
        bytes.len(),
        w.image.text().bytes.len(),
        w.image.symbols.len(),
        w.description,
    ))
}

/// `vcfr asm <file.s> --o <out>` — assembles textual source into an
/// image file.
pub fn cmd_asm(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "source file")?;
    let out = args.value("o").ok_or_else(|| fail("missing -o/--o output path"))?;
    let base = args.u64_or("base", 0x1000)? as u32;
    let src =
        fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))?;
    let image = vcfr_isa::parse_asm(&src, base).map_err(|e| fail(format!("{path}: {e}")))?;
    fs::write(out, image.to_bytes()).map_err(|e| fail(format!("cannot write {out}: {e}")))?;
    Ok(format!(
        "assembled {path} -> {out} ({} bytes of text, {} symbols, {} relocs)",
        image.text().bytes.len(),
        image.symbols.len(),
        image.relocs.len()
    ))
}

/// `vcfr disasm <file> [--blocks]` — disassembly listing, optionally as
/// basic blocks.
pub fn cmd_disasm(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "input file")?;
    let image = load_image(path)?;
    let d = disassemble(&image).map_err(|e| fail(e.to_string()))?;
    let mut out = String::new();
    if args.flag("blocks") {
        let targets = vcfr_rewriter::address_taken_targets(&image, &d);
        let cfg = Cfg::build(&image, &d, &targets);
        for (start, block) in &cfg.blocks {
            let succs = cfg.succs.get(start).cloned().unwrap_or_default();
            let _ = writeln!(out, "block {start:#x} -> {succs:x?}");
            for (addr, inst) in &block.insts {
                let _ = writeln!(out, "  {addr:#010x}  {inst}");
            }
        }
    } else {
        let by_addr: std::collections::BTreeMap<u32, &str> =
            image.symbols.iter().map(|s| (s.addr, s.name.as_str())).collect();
        for (addr, inst) in d.iter() {
            if let Some(name) = by_addr.get(&addr) {
                let _ = writeln!(out, "{name}:");
            }
            let reach = if d.reachable.contains(&addr) { ' ' } else { '?' };
            let _ = writeln!(out, "  {addr:#010x} {reach} {inst}");
        }
    }
    Ok(out)
}

/// `vcfr run <file> [--max N]` — executes on the functional interpreter.
/// Randomized artefacts run their scattered binary.
pub fn cmd_run(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "input file")?;
    let max = args.u64_or("max", 10_000_000)?;
    let mut machine = match load(path)? {
        Artefact::Image(img) => Machine::new(&img),
        Artefact::Randomized(rp) => rp.scattered_machine(),
    };
    let outcome = machine.run(max).map_err(|e| fail(format!("fault: {e}")))?;
    Ok(format!(
        "stopped: {:?} after {} instructions\noutput: {:?}",
        outcome.stop, outcome.steps, outcome.output
    ))
}

/// `vcfr randomize <file> -o <out> [--seed N] [--page-confined]
/// [--software-returns] [--keep sym ...]`.
pub fn cmd_randomize(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "input file")?;
    let out = args.value("o").ok_or_else(|| fail("missing -o/--o output path"))?;
    let image = load_image(path)?;
    let mut cfg = RandomizeConfig::with_seed(args.u64_or("seed", 0)?);
    cfg.page_confined = args.flag("page-confined");
    cfg.software_return_randomization = args.flag("software-returns");
    cfg.keep_unrandomized = args.values("keep").map(str::to_owned).collect();
    let rp = randomize(&image, &cfg).map_err(|e| fail(e.to_string()))?;
    fs::write(out, rp.to_bytes()).map_err(|e| fail(format!("cannot write {out}: {e}")))?;
    let s = rp.stats;
    Ok(format!(
        "wrote {out}\n\
         instructions: {} ({} randomized, {} pinned/kept)\n\
         region: {:#x}..{:#x}\n\
         branches rewritten: {}, data slots rewritten: {}\n\
         fail-over entries: {}, scan pins: {}\n\
         calls: {} total, {} safely software-randomizable, {} expanded (+{} bytes)",
        s.instructions,
        s.randomized,
        s.unrandomized,
        rp.region.0,
        rp.region.1,
        s.rewritten_branches,
        s.rewritten_data_slots,
        s.failover_entries,
        s.pinned_by_scan,
        s.call_sites,
        s.safe_return_sites,
        s.software_expanded_calls,
        s.expansion_bytes,
    ))
}

fn render_stats(stats: &SimStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "instructions: {}", stats.instructions);
    let _ = writeln!(out, "cycles:       {}", stats.cycles);
    let _ = writeln!(out, "IPC:          {:.3}", stats.ipc());
    let _ = writeln!(
        out,
        "IL1: {} accesses, {} misses ({:.2}%)",
        stats.il1.accesses,
        stats.il1.misses,
        100.0 * stats.il1.miss_rate()
    );
    let _ = writeln!(
        out,
        "DL1: {} accesses, {} misses ({:.2}%)",
        stats.dl1.accesses,
        stats.dl1.misses,
        100.0 * stats.dl1.miss_rate()
    );
    let _ = writeln!(
        out,
        "L2:  {} accesses, {} misses; {} reads from L1",
        stats.l2.accesses, stats.l2.misses, stats.l2_reads_from_l1
    );
    let _ = writeln!(
        out,
        "branches: {} predicted, {:.2}% mispredicted; BTB misses {}; RAS misses {}",
        stats.branch.predictions,
        100.0 * stats.branch.mispredict_rate(),
        stats.branch.btb_misses,
        stats.branch.ras_mispredictions
    );
    let cyc = stats.cycles.max(1) as f64;
    let pct = |v: u64| 100.0 * v as f64 / cyc;
    if let Some(drc) = stats.drc {
        let _ = writeln!(
            out,
            "DRC: {} lookups ({} derand / {} rand), {:.2}% miss, {} walk cycles ({:.1}% of cycles)",
            drc.lookups,
            drc.derand_lookups,
            drc.rand_lookups,
            100.0 * drc.miss_rate(),
            stats.drc_walk_cycles,
            pct(stats.drc_walk_cycles)
        );
    }
    let _ = writeln!(
        out,
        "stalls: fetch {} ({:.1}%), data {} ({:.1}%), redirect {} ({:.1}%), rerand {} ({:.1}%)",
        stats.fetch_stall_cycles,
        pct(stats.fetch_stall_cycles),
        stats.load_stall_cycles,
        pct(stats.load_stall_cycles),
        stats.redirect_stall_cycles,
        pct(stats.redirect_stall_cycles),
        stats.rerand_stall_cycles,
        pct(stats.rerand_stall_cycles)
    );
    if stats.rerand_epochs > 0 {
        let _ = writeln!(
            out,
            "rerand: {} epoch swaps ({} stall cycles: quiesce + table rebuild + DRC flush)",
            stats.rerand_epochs, stats.rerand_stall_cycles
        );
    }
    let _ = writeln!(
        out,
        "busy:   {} cycles ({:.1}%: {} issue + {} long-op extra)",
        stats.busy_cycles(),
        pct(stats.busy_cycles()),
        stats.instructions,
        stats.exec_extra_cycles
    );
    out
}

/// The cycle-accounting audit appropriate to the config's engine kind:
/// the wide core gets the OoO identities (front-end floor, throughput,
/// containment), everything else the in-order ones (the multicore
/// aggregate sums per-core counters, so those identities still hold).
fn run_audit(cfg: &SimConfig, stats: &SimStats) -> vcfr_obs::AuditReport {
    let accounting = stats.accounting();
    match cfg.engine {
        EngineKind::Ooo => {
            accounting.audit_ooo(OooConfig::default().width as u64, stats.instructions)
        }
        _ => accounting.audit(),
    }
}

/// Builds the single-run manifest written by `vcfr simulate --manifest`.
/// Same schema as the experiment-matrix manifests, with an empty sample
/// array (the one-shot run is not interval-sampled).
#[allow(clippy::too_many_arguments)]
fn single_run_manifest(
    app: &str,
    mode: ModeSpec,
    cfg: &SimConfig,
    seed: u64,
    stats: &SimStats,
    host_s: f64,
) -> Manifest {
    let mode_name = mode.to_string();
    let drc_entries = mode.drc_entries().unwrap_or(0);
    let mut config = Json::obj();
    // The engine kind and the RandParams point live inside the config's
    // Debug form, so engine variants and frontier points all fingerprint
    // distinctly.
    config.set(
        "fingerprint",
        Json::Str(fingerprint(&format!(
            "{cfg:?} mode={mode_name} drc={drc_entries} seed={seed}"
        ))),
    );
    config.set("seed", Json::U64(seed));
    config.set("freq_ghz", Json::F64(cfg.freq_ghz));
    config.set(
        "drc_entries",
        match mode.drc_entries() {
            Some(entries) => Json::U64(entries as u64),
            None => Json::Null,
        },
    );
    if let Some(p) = cfg.rand {
        config.set("rand", rand_params_json(&p));
    }
    let mut derived = Json::obj();
    derived.set("ipc", Json::F64(stats.ipc()));
    derived.set("il1_miss_rate", Json::F64(stats.il1.miss_rate()));
    derived.set("dl1_miss_rate", Json::F64(stats.dl1.miss_rate()));
    derived.set("branch_mispredict_rate", Json::F64(stats.branch.mispredict_rate()));
    derived.set(
        "drc_miss_rate",
        match stats.drc {
            Some(d) => Json::F64(d.miss_rate()),
            None => Json::Null,
        },
    );
    let accounting = stats.accounting();
    let audit = run_audit(cfg, stats);
    let mut audit_json = accounting.to_json();
    audit_json.set("tolerance", Json::F64(audit.tolerance));
    audit_json.set("passed", Json::Bool(audit.passed()));
    let mut host = Json::obj();
    host.set("wall_s", Json::F64(host_s));
    host.set("insts_per_s", Json::F64(stats.instructions as f64 / host_s.max(1e-9)));
    let mut m = Manifest::new(app, &mode_name);
    m.set_config(config);
    m.set_counters(&stats.snapshot());
    m.set_derived(derived);
    m.set_audit(audit_json);
    m.set_samples(Vec::new());
    m.set_host(host);
    m
}

/// `vcfr simulate <file> [--mode baseline|naive|vcfr] [--drc N] [--ooo]
/// [--cores N] [--max N] [--seed N] [--rerand-epoch N] [--audit]
/// [--progress] [--dump-trace] [--manifest <out.json>]`.
///
/// `--ooo` runs the 4-wide out-of-order core and `--cores N` runs N
/// in-order cores over the shared L2 (every core executes the same
/// program/mode); both route through the same [`Session`] facade as the
/// in-order default, so sampling, progress, audits, manifests and
/// checkpoints behave identically. `--audit` appends the
/// cycle-accounting audit — engine-kind-appropriate identities — and
/// fails the command when the checks do not hold; `--rerand-epoch N`
/// re-randomizes the live layout every N committed instructions (VCFR
/// only, on every engine kind), charging the quiesce + table-rebuild +
/// DRC-flush pause as rerand stall cycles; `--progress` streams ~20
/// telemetry readings to stderr at deterministic instruction boundaries
/// (results are unchanged by it); `--dump-trace` appends the pipeline
/// trace ring to the report on successful runs (in-order only: the
/// other engines keep no ring); `--manifest` writes the run as a
/// `vcfr-obs` manifest readable by `vcfr report`.
pub fn cmd_simulate(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "input file")?;
    let drc_arg = args.u64_or("drc", vcfr_bench::DEFAULT_DRC_ENTRIES as u64)? as usize;
    let mode_spec = ModeSpec::from_wire(args.value("mode").unwrap_or("baseline"), drc_arg)
        .map_err(|e| fail(e.to_string()))?;
    let seed = args.u64_or("seed", 0)?;
    let scale = args.u64_or("scale", 1)?;
    let rerand_epoch = args.u64_or("rerand-epoch", 0)?;
    if rerand_epoch > 0 && mode_spec.drc_entries().is_none() {
        return Err(fail("--rerand-epoch requires --mode vcfr (live table swaps need the DRC)"));
    }
    let cores = args.u64_or("cores", 1)?;
    if cores == 0 {
        return Err(fail("--cores needs at least 1 core"));
    }
    if cores > 64 {
        return Err(fail("--cores is capped at 64"));
    }
    if args.flag("ooo") && cores > 1 {
        return Err(fail("--ooo and --cores select different engines; pick one"));
    }
    let engine = if args.flag("ooo") {
        EngineKind::Ooo
    } else if cores > 1 {
        EngineKind::Multicore { cores: cores as u32 }
    } else {
        EngineKind::InOrder
    };
    // --entropy-bits/--sparsity pick a point on the randomization
    // frontier; a VCFR run always carries its RandParams so the point
    // lands in the checkpoint fingerprint and the manifest.
    let rand = match mode_spec.drc_entries() {
        Some(entries) => Some(RandParams {
            entropy_bits: args.u64_or("entropy-bits", 12)? as u32,
            sparsity: args.u64_or("sparsity", 32)? as u32,
            rerand_epoch: (rerand_epoch > 0).then_some(rerand_epoch),
            drc: DrcConfig::direct_mapped(entries),
        }),
        None => {
            if args.value("entropy-bits").is_some() || args.value("sparsity").is_some() {
                return Err(fail(
                    "--entropy-bits/--sparsity parameterize the randomized layout; \
                     they need --mode vcfr",
                ));
            }
            None
        }
    };
    let cfg = SimConfig::builder()
        .engine(engine)
        .rerand_epoch((rerand_epoch > 0).then_some(rerand_epoch))
        .rand_params(rand)
        .build()
        .map_err(|e| fail(e.to_string()))?;

    // Obtain the image: an artefact file, or — when the argument names a
    // known workload instead of a readable file — a fresh build at the
    // requested `--scale`. Prebuilt artefacts have their trip counts
    // baked in, so `--scale` only applies to the workload-name form.
    let (image, workload_budget) = match load(path) {
        Ok(Artefact::Image(img)) => {
            if scale != 1 {
                return Err(fail(
                    "--scale applies when simulating a workload by name; \
                     rebuild the image with `vcfr build --scale` instead",
                ));
            }
            (Artefact::Image(img), None)
        }
        Ok(rp @ Artefact::Randomized(_)) => {
            if scale != 1 {
                return Err(fail(
                    "--scale applies when simulating a workload by name; \
                     rebuild the image with `vcfr build --scale` instead",
                ));
            }
            (rp, None)
        }
        Err(e) => match vcfr_workloads::by_name_scaled(path, scale) {
            Some(w) => (Artefact::Image(w.image), Some(w.max_insts)),
            None => return Err(e),
        },
    };
    let max = match args.value("max") {
        Some(_) => args.u64_or("max", 2_000_000)?,
        None => workload_budget.unwrap_or(2_000_000),
    };
    let (image, rp) = match image {
        Artefact::Image(img) => {
            let rp = if mode_spec != ModeSpec::Base {
                let rcfg = match &rand {
                    Some(p) => RandomizeConfig::from_params(seed, p),
                    None => RandomizeConfig::with_seed(seed),
                };
                Some(randomize(&img, &rcfg).map_err(|e| fail(e.to_string()))?)
            } else {
                None
            };
            (img, rp)
        }
        Artefact::Randomized(rp) => (rp.original.clone(), Some(*rp)),
    };

    let mode = match (mode_spec, rp.as_ref()) {
        (ModeSpec::Base, _) => Mode::Baseline(&image),
        (ModeSpec::Naive, Some(rp)) => Mode::NaiveIlr(rp),
        (ModeSpec::Vcfr { drc_entries }, Some(rp)) => {
            Mode::Vcfr { program: rp, drc: DrcConfig::direct_mapped(drc_entries) }
        }
        (_, None) => return Err(fail("randomized artefact required for this mode")),
    };

    if args.flag("dump-trace") && !matches!(engine, EngineKind::InOrder) {
        return Err(fail("--dump-trace needs the in-order engine (only it keeps a trace ring)"));
    }

    let host = std::time::Instant::now();
    let mut trace_dump = String::new();
    let mut session =
        Session::new(mode, &cfg, max)?.with_superblocks(!args.flag("no-superblocks"));
    if args.flag("progress") {
        // Live progress on stderr (the report itself lands on
        // stdout at the end): ~20 lines per run, at deterministic
        // instruction boundaries.
        session = session.with_progress((max / 20).max(1), |e| {
            eprintln!(
                "progress: {:>12} insts  {:>12} cycles  ipc {:.3}  sb {:>5.1}%",
                e.instructions,
                e.cycles,
                if e.cycles == 0 { 0.0 } else { e.instructions as f64 / e.cycles as f64 },
                e.sb_hit_rate() * 100.0,
            );
        });
    }
    let outcome = session.run()?;
    let out = outcome.output;
    if args.flag("dump-trace") {
        // Until now the trace ring only surfaced inside SimError;
        // --dump-trace emits it for successful runs too.
        let events = session.trace_events();
        let _ = writeln!(trace_dump, "last {} pipeline events:", events.len());
        for e in &events {
            let _ = writeln!(trace_dump, "  {e}");
        }
    }
    let host_s = host.elapsed().as_secs_f64();

    let engine_note = match engine {
        EngineKind::InOrder => String::new(),
        EngineKind::Ooo => " (4-wide out-of-order)".to_string(),
        EngineKind::Multicore { cores } => format!(" ({cores} in-order cores, shared L2)"),
    };
    let mut report = format!("mode: {mode_spec}{engine_note}\n");
    report.push_str(&render_stats(&out.stats));
    if let Some(mc) = &outcome.multicore {
        for (i, s) in mc.per_core.iter().enumerate() {
            let _ = writeln!(
                report,
                "core {i}: {} insts  {} cycles  ipc {:.3}  contention {} cycles",
                s.instructions,
                s.cycles,
                if s.cycles == 0 { 0.0 } else { s.instructions as f64 / s.cycles as f64 },
                s.contention_stall_cycles,
            );
        }
        let _ = writeln!(
            report,
            "shared L2: {} accesses, {} misses;  makespan: {} cycles",
            mc.shared_l2.accesses, mc.shared_l2.misses, mc.cycles,
        );
    }
    let _ = writeln!(
        report,
        "host wall: {:.3}s ({:.1}M simulated insts/s)",
        host_s,
        out.stats.instructions as f64 / host_s.max(1e-9) / 1e6
    );
    if let (Some(drc), Some(entries)) = (out.stats.drc, mode_spec.drc_entries()) {
        let _ = drc;
        let p = vcfr_power::analyze(&out.stats, &cfg, Some(DrcConfig::direct_mapped(entries)));
        let _ = writeln!(report, "DRC power overhead: {:.3}%", p.drc_overhead_pct());
    }
    if !trace_dump.is_empty() {
        report.push_str(&trace_dump);
    }
    if args.flag("audit") {
        let audit = run_audit(&cfg, &out.stats);
        report.push_str(&audit.render());
        if !audit.passed() {
            return Err(CliError::Msg(report));
        }
    }
    if let Some(mpath) = args.value("manifest") {
        let app = Path::new(path).file_stem().and_then(|s| s.to_str()).unwrap_or(path);
        let m = single_run_manifest(app, mode_spec, &cfg, seed, &out.stats, host_s);
        fs::write(mpath, m.to_string_pretty())
            .map_err(|e| fail(format!("cannot write {mpath}: {e}")))?;
        let _ = writeln!(report, "manifest: wrote {mpath}");
    }
    Ok(report)
}

/// Column order of the standard experiment matrix (via
/// [`ModeSpec::report_rank`]); modes outside the vocabulary — fault and
/// engine-prefixed manifests, frontier points — sort after the known
/// ones, alphabetically.
fn mode_rank(mode: &str) -> (u8, i64) {
    match mode.parse::<ModeSpec>() {
        Ok(spec) => spec.report_rank(),
        Err(_) => (u8::MAX, 0),
    }
}

/// Loads and validates every `*.json` manifest in a directory, sorted by
/// (app, matrix column).
fn load_manifest_dir(dir: &str) -> Result<Vec<Manifest>, CliError> {
    let rd = fs::read_dir(dir).map_err(|e| fail(format!("cannot read {dir}: {e}")))?;
    let mut paths: Vec<std::path::PathBuf> = rd
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for p in paths {
        let text = fs::read_to_string(&p)
            .map_err(|e| fail(format!("cannot read {}: {e}", p.display())))?;
        out.push(
            Manifest::from_str(&text).map_err(|e| fail(format!("{}: {e}", p.display())))?,
        );
    }
    if out.is_empty() {
        return Err(fail(format!("{dir}: no manifest *.json files")));
    }
    out.sort_by(|a, b| {
        (a.app(), mode_rank(a.mode()), a.mode()).cmp(&(b.app(), mode_rank(b.mode()), b.mode()))
    });
    Ok(out)
}

/// Renders the per-run comparison table plus the per-mode slowdown
/// summary (geomean of cycles vs the same app's base run).
fn render_report(dir: &str, manifests: &[Manifest]) -> String {
    use std::collections::{BTreeMap, BTreeSet};
    let mut base_cycles: BTreeMap<&str, u64> = BTreeMap::new();
    for m in manifests {
        if m.mode().parse::<ModeSpec>() == Ok(ModeSpec::Base) {
            base_cycles.insert(m.app(), m.counter("sim.cycles"));
        }
    }
    let apps: BTreeSet<&str> = manifests.iter().map(Manifest::app).collect();
    let mut out = format!("{} run manifests in {dir} ({} apps)\n\n", manifests.len(), apps.len());
    let _ = writeln!(
        out,
        "{:<12} {:<8} {:>6} {:>9} {:>7} {:>7} {:>7} {:>6} {:>7}  audit",
        "app", "mode", "IPC", "slowdown", "IL1%", "DRC%", "fetch%", "load%", "redir%"
    );
    let mut slowdowns: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for m in manifests {
        let cycles = m.counter("sim.cycles");
        let slow = base_cycles
            .get(m.app())
            .filter(|&&b| b > 0)
            .map(|&b| cycles as f64 / b as f64);
        if let Some(s) = slow {
            if m.mode().parse::<ModeSpec>() != Ok(ModeSpec::Base) {
                slowdowns.entry(m.mode()).or_default().push(s);
            }
        }
        let acc = m.json().get("audit").and_then(CycleAccounting::from_json);
        let spct = |v: u64| match acc {
            Some(a) if a.cycles > 0 => 100.0 * v as f64 / a.cycles as f64,
            _ => 0.0,
        };
        let (fp, lp, rp) = match acc {
            Some(a) => (spct(a.fetch_stall), spct(a.load_stall), spct(a.redirect_stall)),
            None => (0.0, 0.0, 0.0),
        };
        let verdict = match m.json().get_path("audit.passed") {
            Some(Json::Bool(true)) => "PASS",
            Some(Json::Bool(false)) => "FAIL",
            _ => "-",
        };
        let _ = writeln!(
            out,
            "{:<12} {:<8} {:>6.3} {:>9} {:>7.2} {:>7} {:>7.1} {:>6.1} {:>7.1}  {}",
            m.app(),
            m.mode(),
            m.derived("ipc").unwrap_or(0.0),
            slow.map_or_else(|| "-".into(), |s| format!("{s:.3}x")),
            100.0 * m.derived("il1_miss_rate").unwrap_or(0.0),
            m.derived("drc_miss_rate")
                .map_or_else(|| "-".into(), |r| format!("{:.2}", 100.0 * r)),
            fp,
            lp,
            rp,
            verdict,
        );
    }
    if !slowdowns.is_empty() {
        let _ = writeln!(out, "\nslowdown vs base (geomean over apps with a base run):");
        for (mode, vals) in &slowdowns {
            let g =
                (vals.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / vals.len() as f64).exp();
            let _ = writeln!(out, "  {mode:<8} {g:.3}x ({} runs)", vals.len());
        }
    }
    out
}

/// Diffs two manifest directories through their canonical
/// (host-stripped) byte forms, pairing runs by `<app>__<mode>` name.
fn render_diff(ours_dir: &str, ours: &[Manifest], theirs_dir: &str, theirs: &[Manifest]) -> String {
    use std::collections::{BTreeMap, BTreeSet};
    let a: BTreeMap<String, &Manifest> = ours.iter().map(|m| (m.file_name(), m)).collect();
    let b: BTreeMap<String, &Manifest> = theirs.iter().map(|m| (m.file_name(), m)).collect();
    let keys: BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    let (mut identical, mut differing, mut only_left, mut only_right) = (0usize, 0, 0, 0);
    let mut lines = String::new();
    for k in keys {
        match (a.get(k), b.get(k)) {
            (Some(x), Some(y)) if x.canonical_bytes() == y.canonical_bytes() => identical += 1,
            (Some(x), Some(y)) => {
                differing += 1;
                let (xc, yc) = (x.counter("sim.cycles"), y.counter("sim.cycles"));
                let delta =
                    if xc > 0 { 100.0 * (yc as f64 - xc as f64) / xc as f64 } else { 0.0 };
                let _ = writeln!(
                    lines,
                    "  {k}: cycles {xc} -> {yc} ({delta:+.2}%), ipc {:.3} -> {:.3}",
                    x.derived("ipc").unwrap_or(0.0),
                    y.derived("ipc").unwrap_or(0.0)
                );
            }
            (Some(_), None) => {
                only_left += 1;
                let _ = writeln!(lines, "  {k}: only in {ours_dir}");
            }
            (None, Some(_)) => {
                only_right += 1;
                let _ = writeln!(lines, "  {k}: only in {theirs_dir}");
            }
            (None, None) => unreachable!("key came from one of the two maps"),
        }
    }
    let mut out = format!(
        "comparing {ours_dir} ({} runs) against {theirs_dir} ({} runs)\n\
         identical: {identical}, differing: {differing}, \
         only-left: {only_left}, only-right: {only_right}\n",
        ours.len(),
        theirs.len(),
    );
    out.push_str(&lines);
    out
}

/// `vcfr report <manifest-dir> [--against <manifest-dir>]` — renders a
/// comparison table from run manifests written by the experiment matrix
/// (or `simulate --manifest`), or diffs two manifest directories.
pub fn cmd_report(args: &Args) -> Result<String, CliError> {
    let dir = args.positional(0, "manifest directory")?;
    let manifests = load_manifest_dir(dir)?;
    if args.flag("frontier") {
        return render_frontier(dir, &manifests);
    }
    match args.value("against") {
        Some(other) => {
            let theirs = load_manifest_dir(other)?;
            Ok(render_diff(dir, &manifests, other, &theirs))
        }
        None => Ok(render_report(dir, &manifests)),
    }
}

/// `vcfr report <dir> --frontier`: rebuilds the entropy/security Pareto
/// table from the frontier manifests in `dir` (written by `repro
/// frontier`, possibly merged from several fleet shards).
fn render_frontier(dir: &str, manifests: &[Manifest]) -> Result<String, CliError> {
    let mut rows: Vec<vcfr_bench::FrontierSummary> =
        manifests.iter().filter_map(vcfr_bench::frontier_summary_from_manifest).collect();
    if rows.is_empty() {
        return Err(fail(format!("{dir}: no frontier manifests (run `repro frontier` first)")));
    }
    rows.sort_by(|a, b| a.app.cmp(&b.app).then(a.entropy_bits.cmp(&b.entropy_bits)));
    let mut out = format!("entropy/security frontier ({dir}, {} point(s))\n", rows.len());
    out.push_str(&vcfr_bench::frontier_pareto_table(&rows));
    out.push_str("* = Pareto-optimal over (attacker success v, slowdown v, fault coverage ^)\n");
    Ok(out)
}

/// `vcfr gadgets <file> [--against <randomized-file>]`.
pub fn cmd_gadgets(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "input file")?;
    let image = load_image(path)?;
    let surface = AttackSurface::scan(&image);
    let mut by_cap: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for (c, n) in surface.capability_census() {
        let name = match c {
            Capability::LoadReg(_) => "load-register",
            Capability::WriteMem => "write-memory",
            Capability::ReadMem => "read-memory",
            Capability::MoveReg => "move-register",
            Capability::Arith => "arithmetic",
            Capability::Syscall => "syscall",
            Capability::Pivot => "pivot",
        };
        *by_cap.entry(name).or_default() += n;
    }
    let mut out = format!("{} gadgets in {}\n", surface.gadgets().len(), path);
    for (cap, n) in by_cap {
        let _ = writeln!(out, "  {cap:<14} {n}");
    }
    if args.flag("payloads") {
        for (t, assembled) in surface.payloads() {
            match assembled {
                Some(p) => {
                    let words = surface.stack_words(&p);
                    let _ = writeln!(
                        out,
                        "payload {:<18} chain {:x?} ({} stack words)",
                        t.name,
                        p.chain,
                        words.len()
                    );
                }
                None => {
                    let _ = writeln!(out, "payload {:<18} cannot be assembled", t.name);
                }
            }
        }
    }
    if let Some(rand_path) = args.value("against") {
        let rp = match load(rand_path)? {
            Artefact::Randomized(rp) => *rp,
            Artefact::Image(_) => {
                return Err(fail(format!("{rand_path}: expected a randomized program")))
            }
        };
        let c = surface.against(&rp);
        let _ = writeln!(
            out,
            "against {}: {:.1}% removed ({} of {} usable); payloads {} -> {}",
            rand_path,
            c.removal_pct(),
            c.usable_after,
            c.total_gadgets,
            c.payloads_before,
            c.payloads_after
        );
    }
    Ok(out)
}

/// `vcfr trace <file> [--count N] [--skip N]` — prints an execution
/// trace (pc, instruction, control outcome) from the functional
/// interpreter.
pub fn cmd_trace(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "input file")?;
    let count = args.u64_or("count", 32)?;
    let skip = args.u64_or("skip", 0)?;
    let mut machine = match load(path)? {
        Artefact::Image(img) => Machine::new(&img),
        Artefact::Randomized(rp) => rp.scattered_machine(),
    };
    let mut out = String::new();
    for _ in 0..skip {
        if machine.step().map_err(|e| fail(e.to_string()))?.is_none() {
            break;
        }
    }
    for _ in 0..count {
        match machine.step().map_err(|e| fail(e.to_string()))? {
            Some(info) => {
                let note = match info.control {
                    Some(cf) => match cf.taken_target() {
                        Some(t) => format!("-> {t:#x}"),
                        None => "(not taken)".into(),
                    },
                    None => String::new(),
                };
                let _ = writeln!(out, "{:#010x}  {:<28} {}", info.pc, info.inst.to_string(), note);
            }
            None => {
                let _ = writeln!(out, "(stopped: {:?})", machine.stop_reason());
                break;
            }
        }
    }
    Ok(out)
}

/// `vcfr stats <file>` — static control-flow statistics (Table II /
/// Figure 9 rows).
pub fn cmd_stats(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "input file")?;
    let image = load_image(path)?;
    let d = disassemble(&image).map_err(|e| fail(e.to_string()))?;
    let s = analyze_control_flow(&image, &d);
    Ok(format!(
        "instructions:            {}\n\
         direct transfers:        {}\n\
         indirect transfers:      {}\n\
         function calls:          {}\n\
         indirect function calls: {}\n\
         returns:                 {}\n\
         functions with ret:      {}\n\
         functions without ret:   {}",
        s.instructions,
        s.direct_transfers,
        s.indirect_transfers,
        s.function_calls,
        s.indirect_function_calls,
        s.returns,
        s.funcs_with_ret,
        s.funcs_without_ret,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("vcfr-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn parse(raw: &[&str], flags: &[&str], values: &[&str]) -> Args {
        let raw: Vec<String> = raw.iter().map(|s| s.to_string()).collect();
        Args::parse(&raw, flags, values).unwrap()
    }

    #[test]
    fn build_run_roundtrip() {
        let img_path = tmp("memcpy.img");
        let a = parse(&["memcpy", "--o", &img_path], &[], &["o"]);
        let msg = cmd_build(&a).unwrap();
        assert!(msg.contains("wrote"));

        let a = parse(&[&img_path], &[], &["max"]);
        let msg = cmd_run(&a).unwrap();
        assert!(msg.contains("output:"), "{msg}");
    }

    #[test]
    fn randomize_then_run_and_gadgets() {
        let img_path = tmp("bzip2.img");
        let rand_path = tmp("bzip2.rand");
        cmd_build(&parse(&["bzip2", "--o", &img_path], &[], &["o"])).unwrap();
        let msg = cmd_randomize(&parse(
            &[&img_path, "--o", &rand_path, "--seed", "5"],
            &[],
            &["o", "seed"],
        ))
        .unwrap();
        assert!(msg.contains("randomized"));

        // The randomized artefact runs and matches the original output.
        let orig = cmd_run(&parse(&[&img_path], &[], &[])).unwrap();
        let rand = cmd_run(&parse(&[&rand_path], &[], &[])).unwrap();
        let tail = |s: &str| s.lines().last().unwrap().to_string();
        assert_eq!(tail(&orig), tail(&rand));

        let g = cmd_gadgets(&parse(
            &[&img_path, "--against", &rand_path],
            &[],
            &["against"],
        ))
        .unwrap();
        assert!(g.contains("% removed"), "{g}");
    }

    #[test]
    fn simulate_all_modes() {
        let img_path = tmp("hmmer.img");
        cmd_build(&parse(&["hmmer", "--o", &img_path], &[], &["o"])).unwrap();
        for mode in ["baseline", "naive", "vcfr"] {
            let r = cmd_simulate(&parse(
                &[&img_path, "--mode", mode, "--max", "50000"],
                &["ooo"],
                &["mode", "max", "drc", "seed"],
            ))
            .unwrap();
            assert!(r.contains("IPC:"), "{mode}: {r}");
        }
        // OoO flag.
        let r = cmd_simulate(&parse(
            &[&img_path, "--ooo", "--max", "50000"],
            &["ooo"],
            &["mode", "max", "drc", "seed"],
        ))
        .unwrap();
        assert!(r.contains("out-of-order"));
    }

    #[test]
    fn simulate_accepts_workload_names_and_scales_them() {
        let flags: &[&str] = &["ooo", "no-superblocks"];
        let values: &[&str] = &["mode", "max", "drc", "seed", "scale"];
        // A workload name instead of a file, scaled 2x: budget follows
        // the workload's scaled max_insts when --max is absent.
        let r = cmd_simulate(&parse(&["memcpy", "--scale", "2"], flags, values)).unwrap();
        assert!(r.contains("IPC:"), "{r}");
        let insts: u64 = r
            .lines()
            .find(|l| l.starts_with("instructions:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .unwrap();
        let base = cmd_simulate(&parse(&["memcpy"], flags, values)).unwrap();
        let base_insts: u64 = base
            .lines()
            .find(|l| l.starts_with("instructions:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert!(insts > base_insts * 3 / 2, "scaled {insts} vs {base_insts}");
        // The per-instruction path is still reachable for debugging.
        let slow =
            cmd_simulate(&parse(&["memcpy", "--no-superblocks"], flags, values)).unwrap();
        let fast_line = |s: &str| {
            s.lines().find(|l| l.starts_with("cycles:")).map(str::to_owned).unwrap()
        };
        assert_eq!(fast_line(&base), fast_line(&slow), "toggle changed results");
        // --scale on a prebuilt image is rejected (trip counts are baked).
        let img_path = tmp("memcpy-scale.img");
        cmd_build(&parse(&["memcpy", "--o", &img_path], &[], &["o"])).unwrap();
        let e = cmd_simulate(&parse(&[&img_path, "--scale", "2"], flags, values)).unwrap_err();
        assert!(e.to_string().contains("vcfr build --scale"), "{e}");
        // Unknown names still report the original file error.
        assert!(cmd_simulate(&parse(&["nonesuch"], flags, values)).is_err());
    }

    #[test]
    fn simulate_rerand_epoch_audits_and_reports_the_pause() {
        let img_path = tmp("hmmer-rr.img");
        cmd_build(&parse(&["hmmer", "--o", &img_path], &[], &["o"])).unwrap();
        let flags: &[&str] = &["ooo", "audit"];
        let values: &[&str] = &["mode", "max", "drc", "seed", "rerand-epoch", "manifest"];
        let r = cmd_simulate(&parse(
            &[
                &img_path,
                "--mode",
                "vcfr",
                "--rerand-epoch",
                "8000",
                "--max",
                "50000",
                "--audit",
            ],
            flags,
            values,
        ))
        .unwrap();
        assert!(r.contains("audit: PASS"), "{r}");
        assert!(r.contains("rerand") && r.contains("epoch swaps"), "{r}");
        let swaps: u64 = r
            .lines()
            .find(|l| l.starts_with("rerand:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert!(swaps >= 3, "expected several epoch swaps in 50k insts: {r}");

        // The pause needs VCFR's mediation hardware...
        let e = cmd_simulate(&parse(
            &[&img_path, "--rerand-epoch", "8000", "--max", "50000"],
            flags,
            values,
        ))
        .unwrap_err();
        assert!(e.to_string().contains("--mode vcfr"), "{e}");
        // ...but not the in-order core: the OoO engine drains, swaps and
        // flushes just the same (the guard that rejected this is gone).
        let r = cmd_simulate(&parse(
            &[
                &img_path,
                "--mode",
                "vcfr",
                "--ooo",
                "--rerand-epoch",
                "8000",
                "--max",
                "50000",
                "--audit",
            ],
            flags,
            values,
        ))
        .unwrap();
        assert!(r.contains("out-of-order"), "{r}");
        assert!(r.contains("audit: PASS"), "{r}");
        let swaps: u64 = r
            .lines()
            .find(|l| l.starts_with("rerand:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert!(swaps >= 3, "OoO epoch swaps: {r}");
    }

    #[test]
    fn simulate_cores_runs_the_multicore_engine() {
        let img_path = tmp("hmmer-mc.img");
        cmd_build(&parse(&["hmmer", "--o", &img_path], &[], &["o"])).unwrap();
        let flags: &[&str] = &["ooo", "audit"];
        let values: &[&str] = &["mode", "max", "drc", "seed", "cores"];
        let r = cmd_simulate(&parse(
            &[&img_path, "--mode", "vcfr", "--cores", "2", "--max", "30000", "--audit"],
            flags,
            values,
        ))
        .unwrap();
        assert!(r.contains("2 in-order cores"), "{r}");
        assert!(r.contains("core 0:") && r.contains("core 1:"), "{r}");
        assert!(r.contains("shared L2:"), "{r}");
        assert!(r.contains("audit: PASS"), "{r}");
        // --cores 1 is the plain in-order engine: no per-core breakdown.
        let one = cmd_simulate(&parse(
            &[&img_path, "--cores", "1", "--max", "30000"],
            flags,
            values,
        ))
        .unwrap();
        assert!(!one.contains("core 0:"), "{one}");
        // Invalid core counts and engine mixes are named errors.
        let e = cmd_simulate(&parse(&[&img_path, "--cores", "0"], flags, values)).unwrap_err();
        assert!(e.to_string().contains("at least 1"), "{e}");
        let e = cmd_simulate(&parse(&[&img_path, "--cores", "65"], flags, values)).unwrap_err();
        assert!(e.to_string().contains("capped"), "{e}");
        let e = cmd_simulate(&parse(
            &[&img_path, "--ooo", "--cores", "2"],
            flags,
            values,
        ))
        .unwrap_err();
        assert!(e.to_string().contains("pick one"), "{e}");
    }

    #[test]
    fn simulate_progress_works_everywhere_but_trace_stays_inorder() {
        let img_path = tmp("hmmer-flags.img");
        cmd_build(&parse(&["hmmer", "--o", &img_path], &[], &["o"])).unwrap();
        let flags: &[&str] = &["ooo", "progress", "dump-trace"];
        let values: &[&str] = &["mode", "max", "cores"];
        // --progress no longer needs the in-order engine.
        cmd_simulate(&parse(
            &[&img_path, "--ooo", "--progress", "--max", "30000"],
            flags,
            values,
        ))
        .unwrap();
        cmd_simulate(&parse(
            &[&img_path, "--cores", "2", "--progress", "--max", "30000"],
            flags,
            values,
        ))
        .unwrap();
        // --dump-trace still does: only the in-order engine keeps a ring.
        for extra in [&["--ooo"][..], &["--cores", "2"][..]] {
            let mut argv = vec![img_path.as_str(), "--dump-trace", "--max", "30000"];
            argv.extend_from_slice(extra);
            let e = cmd_simulate(&parse(&argv, flags, values)).unwrap_err();
            assert!(e.to_string().contains("in-order"), "{e}");
        }
        let r = cmd_simulate(&parse(
            &[&img_path, "--dump-trace", "--max", "30000"],
            flags,
            values,
        ))
        .unwrap();
        assert!(r.contains("pipeline events:"), "{r}");
    }

    #[test]
    fn disasm_and_stats() {
        let img_path = tmp("lbm.img");
        cmd_build(&parse(&["lbm", "--o", &img_path], &[], &["o"])).unwrap();
        let listing = cmd_disasm(&parse(&[&img_path], &["blocks"], &[])).unwrap();
        assert!(listing.contains("lib_init:"), "symbols shown");
        let blocks = cmd_disasm(&parse(&[&img_path, "--blocks"], &["blocks"], &[])).unwrap();
        assert!(blocks.contains("block 0x"));
        let s = cmd_stats(&parse(&[&img_path], &[], &[])).unwrap();
        assert!(s.contains("direct transfers"));
    }

    #[test]
    fn asm_assembles_and_runs() {
        let src_path = tmp("prog.s");
        let img_path = tmp("prog.img");
        fs::write(&src_path, "mov rax, 123\nout rax\nhalt\n").unwrap();
        let msg = cmd_asm(&parse(
            &[&src_path, "--o", &img_path],
            &[],
            &["o", "base"],
        ))
        .unwrap();
        assert!(msg.contains("assembled"));
        let run = cmd_run(&parse(&[&img_path], &[], &[])).unwrap();
        assert!(run.contains("[123]"), "{run}");
    }

    #[test]
    fn trace_shows_instructions_and_stops() {
        let img_path = tmp("mcpy2.img");
        cmd_build(&parse(&["memcpy", "--o", &img_path], &[], &["o"])).unwrap();
        let t = cmd_trace(&parse(
            &[&img_path, "--count", "5"],
            &[],
            &["count", "skip"],
        ))
        .unwrap();
        assert_eq!(t.lines().count(), 5);
        assert!(t.contains("call"), "first instruction is the lib_init call: {t}");
    }

    #[test]
    fn simulate_audit_manifest_and_report() {
        let img_path = tmp("hmmer-obs.img");
        cmd_build(&parse(&["hmmer", "--o", &img_path], &[], &["o"])).unwrap();
        let man_dir = std::env::temp_dir().join("vcfr-cli-tests").join("report-manifests");
        let _ = fs::remove_dir_all(&man_dir);
        fs::create_dir_all(&man_dir).unwrap();
        let base_m = man_dir.join("hmmer-obs__baseline.json");
        let vcfr_m = man_dir.join("hmmer-obs__vcfr.json");

        let flags: &[&str] = &["ooo", "audit"];
        let values: &[&str] = &["mode", "max", "drc", "seed", "manifest"];
        let r = cmd_simulate(&parse(
            &[&img_path, "--audit", "--manifest", base_m.to_str().unwrap(), "--max", "50000"],
            flags,
            values,
        ))
        .unwrap();
        assert!(r.contains("audit: PASS"), "{r}");
        assert!(r.contains("stalls: fetch") && r.contains("%"), "{r}");
        assert!(r.contains("busy:"), "{r}");
        cmd_simulate(&parse(
            &[
                &img_path,
                "--mode",
                "vcfr",
                "--audit",
                "--manifest",
                vcfr_m.to_str().unwrap(),
                "--max",
                "50000",
            ],
            flags,
            values,
        ))
        .unwrap();

        // The written manifests validate and carry the run identity.
        let m = Manifest::from_str(&fs::read_to_string(&vcfr_m).unwrap()).unwrap();
        assert_eq!(m.app(), "hmmer-obs");
        assert_eq!(m.mode(), "vcfr128", "canonical mode names carry the DRC geometry");
        assert!(m.counter("sim.cycles") > 0);

        // The report renders both runs with a slowdown column.
        let dir = man_dir.to_str().unwrap().to_string();
        let rep = cmd_report(&parse(&[&dir], &[], &["against"])).unwrap();
        assert!(rep.contains("hmmer-obs"), "{rep}");
        assert!(rep.contains("slowdown"), "{rep}");
        assert!(rep.contains("1.000x"), "base run slows down by exactly 1x: {rep}");
        assert!(rep.contains("PASS"), "{rep}");
        assert!(rep.contains("slowdown vs base"), "{rep}");

        // Diffing a directory against itself finds every run identical.
        let diff =
            cmd_report(&parse(&[&dir, "--against", &dir], &[], &["against"])).unwrap();
        assert!(diff.contains("identical: 2, differing: 0"), "{diff}");

        // An empty directory is a clean error.
        let empty = std::env::temp_dir().join("vcfr-cli-tests").join("no-manifests");
        fs::create_dir_all(&empty).unwrap();
        let e = cmd_report(&parse(&[empty.to_str().unwrap()], &[], &["against"])).unwrap_err();
        assert!(e.to_string().contains("no manifest"), "{e}");
    }

    #[test]
    fn report_frontier_renders_pareto_table_from_manifests() {
        use vcfr_bench::{build_frontier_manifests, run_frontier, write_manifests, FrontierPoint};
        use vcfr_gadget::FuzzConfig;

        let mut w = vcfr_workloads::by_name("sjeng").unwrap();
        w.max_insts = w.max_insts.min(30_000);
        let points = vec![
            FrontierPoint { entropy_bits: 13, sparsity: 2 },
            FrontierPoint { entropy_bits: 17, sparsity: 2 },
        ];
        let fz = FuzzConfig { seed: 2015, trials: 2, probes_per_trial: 8, exec_budget: 1024 };
        let rows = run_frontier(&w, &points, &fz, 2);
        let manifests = build_frontier_manifests(&rows, &fz, 2);

        let dir = std::env::temp_dir().join("vcfr-cli-tests").join("frontier-manifests");
        let _ = fs::remove_dir_all(&dir);
        write_manifests(&dir, &manifests).unwrap();

        let dir_s = dir.to_str().unwrap().to_string();
        let rep =
            cmd_report(&parse(&[&dir_s, "--frontier"], &["frontier"], &["against"])).unwrap();
        assert!(rep.contains("sjeng-frontier-e13"), "{rep}");
        assert!(rep.contains("sjeng-frontier-e17"), "{rep}");
        assert!(rep.contains("atk-success") && rep.contains("pareto"), "{rep}");
        assert!(rep.contains("Pareto-optimal"), "{rep}");

        // A directory of ordinary manifests is a clean error under --frontier.
        let plain = std::env::temp_dir().join("vcfr-cli-tests").join("frontier-plain");
        let _ = fs::remove_dir_all(&plain);
        fs::create_dir_all(&plain).unwrap();
        let mut ordinary = Manifest::new("sjeng", "base");
        let mut cfg = vcfr_obs::Json::obj();
        cfg.set("fingerprint", vcfr_obs::Json::Str("VCFRCKP1-test".into()));
        ordinary.set_config(cfg);
        ordinary.set_counters(&vcfr_obs::Snapshot::from_counters(std::iter::empty()));
        fs::write(plain.join(ordinary.file_name()), ordinary.to_string_pretty()).unwrap();
        let plain_s = plain.to_str().unwrap().to_string();
        let e = cmd_report(&parse(&[&plain_s, "--frontier"], &["frontier"], &["against"]))
            .unwrap_err();
        assert!(e.to_string().contains("no frontier manifests"), "{e}");
    }

    #[test]
    fn bad_inputs_give_clean_errors() {
        assert!(cmd_build(&parse(&["nonesuch", "--o", "/tmp/x"], &[], &["o"])).is_err());
        assert!(cmd_run(&parse(&["/nonexistent/file"], &[], &[])).is_err());
        let junk = tmp("junk.bin");
        fs::write(&junk, b"garbage").unwrap();
        let e = cmd_run(&parse(&[&junk], &[], &[])).unwrap_err();
        assert!(e.to_string().contains("not a VCFR"));
    }
}
