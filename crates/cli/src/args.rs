//! A minimal flag parser (no external dependency): positionals, `--flag`
//! booleans, `--key value` options, repeatable options.

use std::collections::HashMap;
use std::fmt;

/// An argument-parsing failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgsError {
    /// A `--key` option was given without a value.
    MissingValue {
        /// The option name.
        key: String,
    },
    /// An option was not recognised.
    Unknown {
        /// The option name.
        key: String,
    },
    /// A value failed to parse as the expected type.
    BadValue {
        /// The option name.
        key: String,
        /// The offending value.
        value: String,
    },
    /// A required positional argument is missing.
    MissingPositional {
        /// What was expected.
        what: &'static str,
    },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue { key } => write!(f, "option --{key} needs a value"),
            ArgsError::Unknown { key } => write!(f, "unknown option --{key}"),
            ArgsError::BadValue { key, value } => {
                write!(f, "option --{key}: cannot parse {value:?}")
            }
            ArgsError::MissingPositional { what } => write!(f, "missing argument: {what}"),
        }
    }
}

impl std::error::Error for ArgsError {}

/// Parsed arguments: positionals plus options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: Vec<String>,
    options: HashMap<String, Vec<String>>,
}

impl Args {
    /// Parses raw arguments. `value_opts` lists the option names that
    /// take a value; everything else starting with `--` is a boolean
    /// flag from `flag_opts`.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgsError`] for unknown options or missing values.
    pub fn parse(
        raw: &[String],
        flag_opts: &[&str],
        value_opts: &[&str],
    ) -> Result<Args, ArgsError> {
        let mut out = Args::default();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if flag_opts.contains(&key) {
                    out.flags.push(key.to_owned());
                } else if value_opts.contains(&key) {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgsError::MissingValue { key: key.to_owned() })?;
                    out.options.entry(key.to_owned()).or_default().push(v.clone());
                } else {
                    return Err(ArgsError::Unknown { key: key.to_owned() });
                }
            } else {
                out.positionals.push(a.clone());
            }
        }
        Ok(out)
    }

    /// The `n`-th positional argument.
    ///
    /// # Errors
    ///
    /// [`ArgsError::MissingPositional`] when absent.
    pub fn positional(&self, n: usize, what: &'static str) -> Result<&str, ArgsError> {
        self.positionals
            .get(n)
            .map(String::as_str)
            .ok_or(ArgsError::MissingPositional { what })
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Last value of an option, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.options.get(name).and_then(|v| v.last()).map(String::as_str)
    }

    /// All values of a repeatable option.
    pub fn values(&self, name: &str) -> impl Iterator<Item = &str> {
        self.options.get(name).into_iter().flatten().map(String::as_str)
    }

    /// Parses an option value as an integer, with a default.
    ///
    /// # Errors
    ///
    /// [`ArgsError::BadValue`] when present but unparsable.
    pub fn u64_or(&self, name: &str, default: u64) -> Result<u64, ArgsError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                key: name.to_owned(),
                value: v.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_positionals_flags_and_options() {
        let a = Args::parse(
            &raw(&["prog.img", "--verbose", "--seed", "42", "--keep", "f", "--keep", "g"]),
            &["verbose"],
            &["seed", "keep"],
        )
        .unwrap();
        assert_eq!(a.positional(0, "file").unwrap(), "prog.img");
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.u64_or("seed", 0).unwrap(), 42);
        assert_eq!(a.values("keep").collect::<Vec<_>>(), vec!["f", "g"]);
    }

    #[test]
    fn unknown_option_rejected() {
        let e = Args::parse(&raw(&["--nope"]), &[], &[]).unwrap_err();
        assert_eq!(e, ArgsError::Unknown { key: "nope".into() });
    }

    #[test]
    fn missing_value_rejected() {
        let e = Args::parse(&raw(&["--seed"]), &[], &["seed"]).unwrap_err();
        assert_eq!(e, ArgsError::MissingValue { key: "seed".into() });
    }

    #[test]
    fn bad_integer_rejected() {
        let a = Args::parse(&raw(&["--seed", "xyz"]), &[], &["seed"]).unwrap();
        assert!(matches!(a.u64_or("seed", 0), Err(ArgsError::BadValue { .. })));
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&raw(&[]), &[], &["seed"]).unwrap();
        assert_eq!(a.u64_or("seed", 7).unwrap(), 7);
        assert!(a.positional(0, "file").is_err());
    }
}
