//! `vcfr` — the command-line front end of the VCFR toolchain.
//!
//! ```text
//! vcfr build <workload> --o <file> [--scale N]  build a synthetic workload image
//! vcfr disasm <file> [--blocks]             disassemble (optionally as CFG blocks)
//! vcfr run <file> [--max N]                 execute on the functional interpreter
//! vcfr randomize <file> --o <out> [--seed N] [--page-confined]
//!                [--software-returns] [--keep SYM]...
//! vcfr simulate <file|workload> [--mode base|naive|vcfr<N>] [--drc N] [--ooo]
//!                [--cores N] [--max N] [--seed N] [--rerand-epoch N] [--audit]
//!                [--entropy-bits N] [--sparsity N] [--scale N]
//!                [--no-superblocks] [--manifest <out.json>]
//!                [--progress] [--dump-trace]
//! vcfr gadgets <file> [--against <randomized>]
//! vcfr stats <file>                         static control-flow statistics
//! vcfr report <manifest-dir> [--against <manifest-dir>] [--frontier]
//! vcfr serve [--dir D]                      run the batch-simulation daemon
//! vcfr submit <workload> [--dir D] [...]    queue a job on the daemon
//! vcfr jobs [--dir D]                       list the daemon's jobs
//! vcfr top [--dir D] [--once]               live daemon metrics dashboard
//! vcfr shutdown [--dir D]                   checkpoint everything and exit
//! vcfr fleet serve|join|submit|status|top|shutdown
//!                                           sharded multi-daemon fleet
//! ```

mod args;
mod commands;
mod fleet;
mod serve;

use args::Args;
use commands::CliError;

const USAGE: &str = "\
vcfr — hardware-supported instruction address space randomization toolchain

USAGE:
    vcfr build <workload> --o <file> [--scale N]
    vcfr asm <file.s> --o <file> [--base ADDR]
    vcfr disasm <file> [--blocks]
    vcfr run <file> [--max N]
    vcfr randomize <file> --o <out> [--seed N] [--page-confined]
                   [--software-returns] [--keep SYM]...
    vcfr simulate <file|workload> [--mode base|naive|vcfr<N>] [--drc N] [--ooo]
                   [--cores N] [--max N] [--seed N] [--rerand-epoch N] [--audit]
                   [--entropy-bits N] [--sparsity N] [--scale N]
                   [--no-superblocks] [--manifest <out.json>]
                   [--progress] [--dump-trace]
    vcfr gadgets <file> [--against <randomized>] [--payloads]
    vcfr stats <file>
    vcfr trace <file> [--count N] [--skip N]
    vcfr report <manifest-dir> [--against <manifest-dir>] [--frontier]
    vcfr serve [--dir D] [--port P] [--workers N] [--queue N]
    vcfr submit <workload> [--mode base|naive|vcfr<N>] [--drc N] [--max N]
                   [--seed N] [--rerand-epoch N] [--checkpoint-every N]
                   [--scale N] [--ooo] [--cores N] [--dir D] [--faults] [--watch]
    vcfr jobs [--dir D]
    vcfr top [--dir D] [--interval MS] [--count N] [--once]
    vcfr shutdown [--dir D]
    vcfr fleet serve [--fleet D] [--port P] [--chunks N] [--heartbeat-ms N]
                   [--heartbeat-cap-ms N] [--lost-after N]
    vcfr fleet join --fleet D --dir W [--slots N] [--workers N] [--queue N]
    vcfr fleet submit --apps a,b,c [--modes m,...|--campaign] [--max N]
                   [--scale N] [--checkpoint-every N] [--fleet D]
    vcfr fleet status [--fleet D] [--json]
    vcfr fleet top [--fleet D] [--interval MS] [--count N] [--once]
    vcfr fleet shutdown [--fleet D] [--keep-workers]
";

fn dispatch(cmd: &str, rest: &[String]) -> Result<String, CliError> {
    match cmd {
        "build" => commands::cmd_build(&Args::parse(rest, &[], &["o", "scale"])?),
        "asm" => commands::cmd_asm(&Args::parse(rest, &[], &["o", "base"])?),
        "disasm" => commands::cmd_disasm(&Args::parse(rest, &["blocks"], &[])?),
        "run" => commands::cmd_run(&Args::parse(rest, &[], &["max"])?),
        "randomize" => commands::cmd_randomize(&Args::parse(
            rest,
            &["page-confined", "software-returns"],
            &["o", "seed", "keep"],
        )?),
        "simulate" => commands::cmd_simulate(&Args::parse(
            rest,
            &["ooo", "audit", "no-superblocks", "progress", "dump-trace"],
            &[
                "mode",
                "drc",
                "max",
                "seed",
                "rerand-epoch",
                "scale",
                "manifest",
                "cores",
                "entropy-bits",
                "sparsity",
            ],
        )?),
        "report" => commands::cmd_report(&Args::parse(rest, &["frontier"], &["against"])?),
        "gadgets" => commands::cmd_gadgets(&Args::parse(rest, &["payloads"], &["against"])?),
        "stats" => commands::cmd_stats(&Args::parse(rest, &[], &[])?),
        "trace" => commands::cmd_trace(&Args::parse(rest, &[], &["count", "skip"])?),
        "serve" => serve::cmd_serve(&Args::parse(
            rest,
            &[],
            &["dir", "port", "workers", "queue"],
        )?),
        "submit" => serve::cmd_submit(&Args::parse(
            rest,
            &["watch", "faults", "ooo"],
            &[
                "mode",
                "drc",
                "max",
                "seed",
                "rerand-epoch",
                "checkpoint-every",
                "scale",
                "cores",
                "dir",
            ],
        )?),
        "fleet" => {
            let Some((sub, rest)) = rest.split_first() else {
                return Err(CliError::Msg(format!("fleet needs a subcommand\n\n{USAGE}")));
            };
            match sub.as_str() {
                "serve" => fleet::cmd_fleet_serve(&Args::parse(
                    rest,
                    &[],
                    &["fleet", "port", "chunks", "heartbeat-ms", "heartbeat-cap-ms", "lost-after"],
                )?),
                "join" => fleet::cmd_fleet_join(&Args::parse(
                    rest,
                    &[],
                    &["fleet", "dir", "slots", "port", "workers", "queue"],
                )?),
                "submit" => fleet::cmd_fleet_submit(&Args::parse(
                    rest,
                    &["campaign"],
                    &["fleet", "apps", "modes", "max", "scale", "checkpoint-every"],
                )?),
                "status" => fleet::cmd_fleet_status(&Args::parse(rest, &["json"], &["fleet"])?),
                "top" => fleet::cmd_fleet_top(&Args::parse(
                    rest,
                    &["once"],
                    &["fleet", "interval", "count"],
                )?),
                "shutdown" => {
                    fleet::cmd_fleet_shutdown(&Args::parse(rest, &["keep-workers"], &["fleet"])?)
                }
                other => Err(CliError::Msg(format!("unknown fleet subcommand {other:?}\n\n{USAGE}"))),
            }
        }
        "jobs" => serve::cmd_jobs(&Args::parse(rest, &[], &["dir"])?),
        "top" => serve::cmd_top(&Args::parse(rest, &["once"], &["dir", "interval", "count"])?),
        "shutdown" => serve::cmd_shutdown(&Args::parse(rest, &[], &["dir"])?),
        other => Err(CliError::Msg(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    match dispatch(cmd, rest) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(match e {
                CliError::Usage(_) => 2,
                _ => 1,
            });
        }
    }
}
