//! End-to-end check of the daemon's engine routing: `vcfr submit
//! --ooo` and `--cores N` run the other [`EngineKind`]s behind the
//! same `Session` facade, and the finished manifests carry an
//! engine-prefixed mode (so they never collide with the in-order cell
//! of the same matrix) plus the audit variant that matches the engine.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const VCFR: &str = env!("CARGO_BIN_EXE_vcfr");

/// Kills the daemon on every exit path so a failing assert never leaks
/// a background process.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn start_daemon(dir: &Path) -> Daemon {
    let child = Command::new(VCFR)
        .args(["serve", "--dir"])
        .arg(dir)
        .args(["--workers", "2", "--queue", "8"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    Daemon(child)
}

fn wait_for(what: &str, mut ready: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !ready() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn manifest(dir: &Path, id: u64) -> PathBuf {
    dir.join("jobs").join(format!("job-{id}.manifest.json"))
}

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vcfr-engine-jobs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn ooo_and_multicore_jobs_finish_with_engine_prefixed_manifests() {
    let dir = fresh_dir();
    let _daemon = start_daemon(&dir);

    // Job 1: the 4-wide OoO core; job 2: two in-order cores over the
    // shared L2. Fixed order so the ids are stable.
    for engine_args in [vec!["--ooo"], vec!["--cores", "2"]] {
        wait_for("submission", || {
            Command::new(VCFR)
                .args(["submit", "bzip2", "--dir"])
                .arg(&dir)
                .args(["--mode", "vcfr", "--drc", "128", "--max", "60000"])
                .args(&engine_args)
                .output()
                .expect("submit runs")
                .status
                .success()
        });
    }
    wait_for("both manifests", || manifest(&dir, 1).exists() && manifest(&dir, 2).exists());

    for (id, mode) in [(1, "ooo-vcfr128"), (2, "mc2-vcfr128")] {
        let text = std::fs::read_to_string(manifest(&dir, id)).expect("manifest exists");
        assert!(
            text.contains(&format!("\"mode\": \"{mode}\"")),
            "job {id} manifest lost its engine prefix:\n{text}"
        );
        assert!(
            text.contains("\"passed\": true"),
            "job {id} manifest failed its engine's audit:\n{text}"
        );
    }

    // The two engine flags are mutually exclusive, and the daemon
    // refuses fault campaigns off the in-order engine.
    let both = Command::new(VCFR)
        .args(["submit", "bzip2", "--dir"])
        .arg(&dir)
        .args(["--ooo", "--cores", "2"])
        .output()
        .expect("submit runs");
    assert!(!both.status.success(), "--ooo --cores 2 was accepted");
    let faulted = Command::new(VCFR)
        .args(["submit", "bzip2", "--dir"])
        .arg(&dir)
        .args(["--ooo", "--faults"])
        .output()
        .expect("submit runs");
    assert!(!faulted.status.success(), "--ooo --faults was accepted");
    assert!(
        String::from_utf8_lossy(&faulted.stderr).contains("in-order"),
        "rejection should name the in-order engine"
    );
}
