//! Smoke of the daemon's telemetry surface: start a daemon, keep several
//! jobs in flight concurrently, and check that the `metrics` endpoint
//! (via `vcfr top --once`) and the progress-streaming `watch` both
//! report live, internally consistent state.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const VCFR: &str = env!("CARGO_BIN_EXE_vcfr");

/// Kills the daemon on every exit path so a failing assert never leaks
/// a background process.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn start_daemon(dir: &Path) -> Daemon {
    let child = Command::new(VCFR)
        .args(["serve", "--dir"])
        .arg(dir)
        .args(["--workers", "2", "--queue", "8"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    Daemon(child)
}

fn wait_for(what: &str, mut ready: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !ready() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vcfr-metrics-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One `vcfr top --once` frame, as text.
fn top_once(dir: &Path) -> String {
    let out = Command::new(VCFR)
        .args(["top", "--once", "--dir"])
        .arg(dir)
        .output()
        .expect("top runs");
    assert!(
        out.status.success(),
        "vcfr top failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("top output is utf-8")
}

#[test]
fn metrics_endpoint_reports_live_state_under_concurrent_jobs() {
    let dir = fresh_dir();
    let _daemon = start_daemon(&dir);

    // A frame from the idle daemon: zero jobs everywhere, two workers.
    wait_for("daemon endpoint", || dir.join("endpoint").exists());
    let idle = top_once(&dir);
    assert!(idle.contains("jobs: 0 queued  0 running  0 done  0 failed"), "idle frame:\n{idle}");
    assert!(idle.contains("worker 0:") && idle.contains("worker 1:"), "idle frame:\n{idle}");

    // Submit four jobs onto two workers, the last one watched to the
    // end: the watch stream must carry progress lines with a growing
    // instruction count before the terminal status line.
    for workload in ["bzip2", "hmmer", "lbm"] {
        wait_for(&format!("submission of {workload}"), || {
            Command::new(VCFR)
                .args(["submit", workload, "--dir"])
                .arg(dir.to_str().unwrap())
                .args(["--mode", "vcfr", "--drc", "128", "--max", "2000000"])
                .output()
                .expect("submit runs")
                .status
                .success()
        });
    }
    let watched = Command::new(VCFR)
        .args(["submit", "h264ref", "--dir"])
        .arg(&dir)
        .args(["--mode", "vcfr", "--drc", "128", "--max", "2000000", "--watch"])
        .output()
        .expect("watched submit runs");
    assert!(watched.status.success(), "{}", String::from_utf8_lossy(&watched.stderr));
    let watch_text = String::from_utf8_lossy(&watched.stdout);
    let progress_lines: Vec<&str> =
        watch_text.lines().filter(|l| l.contains("insts (")).collect();
    assert!(
        !progress_lines.is_empty(),
        "watch stream carried no progress lines:\n{watch_text}"
    );
    // The workloads halt naturally before the 2M budget, so the
    // terminal line reports whatever count the program retired.
    let done_insts: u64 = watch_text
        .lines()
        .find_map(|l| l.split_once(": done at ").map(|(_, r)| r))
        .and_then(|r| r.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("watch stream never reported completion:\n{watch_text}"));
    assert!(done_insts > 0, "watched job retired nothing:\n{watch_text}");

    // All four jobs ran to completion, so the final frame must show the
    // work: 4 done, nothing queued or running, both workers used, and a
    // non-empty latency line.
    wait_for("all jobs done", || top_once(&dir).contains("jobs: 0 queued  0 running  4 done"));
    let done = top_once(&dir);
    assert!(done.contains("4 done  0 failed"), "final frame:\n{done}");
    let retired: u64 = done
        .lines()
        .find_map(|l| l.split_once("throughput: ").map(|(_, r)| r))
        .and_then(|r| r.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .expect("throughput line in frame");
    assert!(
        retired >= done_insts,
        "retired total {retired} below the watched job's {done_insts}:\n{done}"
    );
    assert!(done.contains("job latency: 4 finished"), "final frame:\n{done}");
    // Two workers and four equally sized jobs: each worker ran at least
    // one (the pool balances; a 4-0 split would mean a dead worker).
    for w in ["worker 0:", "worker 1:"] {
        let line = done.lines().find(|l| l.starts_with(w)).expect("worker line");
        assert!(!line.contains(" 0 jobs"), "idle worker in final frame:\n{done}");
    }
    // Progress events from the taps reached the hub.
    let events: u64 = done
        .lines()
        .find_map(|l| l.split("  |  ").find_map(|f| f.strip_suffix(" progress events")))
        .and_then(|n| n.trim().parse().ok())
        .expect("progress-event counter in frame");
    assert!(events >= 4, "expected taps to fire for each job, frame:\n{done}");

    // Shut down cleanly so the temp dir can go away.
    let _ = Command::new(VCFR).args(["shutdown", "--dir"]).arg(&dir).output();
    let _ = std::fs::remove_dir_all(&dir);
}
