//! End-to-end smoke of the batch-simulation service: start a daemon,
//! submit two jobs, hard-kill the daemon mid-run (SIGKILL — no drain),
//! restart it over the same state directory, and check that the resumed
//! jobs finish with manifests byte-identical to an uninterrupted run.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const VCFR: &str = env!("CARGO_BIN_EXE_vcfr");

/// Kills the daemon on every exit path so a failing assert never leaks
/// a background process.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn start_daemon(dir: &Path) -> Daemon {
    let child = Command::new(VCFR)
        .args(["serve", "--dir"])
        .arg(dir)
        .args(["--workers", "2", "--queue", "8"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    Daemon(child)
}

fn wait_for(what: &str, mut ready: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !ready() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Submits the two smoke jobs in a fixed order (so they get ids 1 and 2
/// in every run) and returns once both are admitted.
fn submit_jobs(dir: &Path) {
    for (workload, drc) in [("bzip2", "64"), ("hmmer", "128")] {
        wait_for(&format!("submission of {workload}"), || {
            let out = Command::new(VCFR)
                .args(["submit", workload, "--dir"])
                .arg(dir)
                .args([
                    "--mode",
                    "vcfr",
                    "--drc",
                    drc,
                    "--max",
                    "4000000",
                    "--rerand-epoch",
                    "9000",
                    "--checkpoint-every",
                    "25000",
                ])
                .output()
                .expect("submit runs");
            out.status.success()
        });
    }
}

fn manifest(dir: &Path, id: u64) -> PathBuf {
    dir.join("jobs").join(format!("job-{id}.manifest.json"))
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vcfr-serve-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn shutdown(dir: &Path) {
    wait_for("shutdown request", || {
        let acknowledged = Command::new(VCFR)
            .args(["shutdown", "--dir"])
            .arg(dir)
            .output()
            .expect("shutdown runs")
            .status
            .success();
        // The daemon removes its endpoint file on the way out, so a gone
        // endpoint also means the shutdown took — even if the daemon won
        // the race and closed the connection before acknowledging.
        acknowledged || !dir.join("endpoint").exists()
    });
}

#[test]
fn killed_daemon_resumes_jobs_bit_identically() {
    // Interrupted timeline: submit, hard-kill at the first checkpoint,
    // restart, let the jobs finish from their snapshots.
    let dir_a = fresh_dir("a");
    {
        let daemon = start_daemon(&dir_a);
        submit_jobs(&dir_a);
        // As soon as any snapshot hits the disk, pull the plug. (If the
        // machine is so fast both jobs already finished, proceed — the
        // restart then simply has nothing to resume.)
        wait_for("a checkpoint file", || {
            let snapshot_on_disk = std::fs::read_dir(dir_a.join("jobs")).is_ok_and(|entries| {
                entries.flatten().any(|e| {
                    e.file_name().to_str().is_some_and(|n| n.ends_with(".ckpt"))
                })
            });
            snapshot_on_disk || (manifest(&dir_a, 1).exists() && manifest(&dir_a, 2).exists())
        });
        drop(daemon); // SIGKILL, mid-run
    }
    {
        let _daemon = start_daemon(&dir_a);
        wait_for("resumed manifests", || {
            manifest(&dir_a, 1).exists() && manifest(&dir_a, 2).exists()
        });
        shutdown(&dir_a);
    }

    // Reference timeline: the same two jobs, never interrupted.
    let dir_b = fresh_dir("b");
    {
        let _daemon = start_daemon(&dir_b);
        submit_jobs(&dir_b);
        wait_for("reference manifests", || {
            manifest(&dir_b, 1).exists() && manifest(&dir_b, 2).exists()
        });
        shutdown(&dir_b);
    }

    for id in [1, 2] {
        let resumed = std::fs::read(manifest(&dir_a, id)).expect("resumed manifest");
        let reference = std::fs::read(manifest(&dir_b, id)).expect("reference manifest");
        assert!(!resumed.is_empty());
        assert_eq!(
            resumed, reference,
            "job {id}: manifest of the killed-and-resumed run differs from the straight run"
        );
    }

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
