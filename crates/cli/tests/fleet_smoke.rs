//! End-to-end smoke of the simulation fleet: a coordinator with two
//! joined worker daemons runs a sharded matrix plus a fault campaign,
//! one worker is hard-killed (SIGKILL) mid-campaign, and the fleet
//! re-dispatches its lost chunks from their checkpoints. The merged
//! `results/manifests/` tree must come out byte-identical to the same
//! six specs run on a single uninterrupted daemon.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const VCFR: &str = env!("CARGO_BIN_EXE_vcfr");

/// The six chunks of this smoke, in submission order: a 2-app x 2-mode
/// experiment matrix, then the bzip2 fault campaign. Each row is
/// (merged manifest file name, equivalent solo `vcfr submit` args).
const CHUNKS: [(&str, &[&str]); 6] = [
    ("bzip2__base.json", &["bzip2", "--mode", "baseline"]),
    ("bzip2__vcfr128.json", &["bzip2", "--mode", "vcfr", "--drc", "128"]),
    ("hmmer__base.json", &["hmmer", "--mode", "baseline"]),
    ("hmmer__vcfr128.json", &["hmmer", "--mode", "vcfr", "--drc", "128"]),
    ("bzip2__faults-base.json", &["bzip2", "--mode", "baseline", "--faults"]),
    ("bzip2__faults-vcfr128.json", &["bzip2", "--mode", "vcfr", "--drc", "128", "--faults"]),
];

/// Kills the process on every exit path so a failing assert never
/// leaks a background daemon.
struct Proc(Child);

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn(args: &[&str], dir_flag: &str, dir: &Path) -> Proc {
    let child = Command::new(VCFR)
        .args(args)
        .arg(dir_flag)
        .arg(dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("process spawns");
    Proc(child)
}

fn wait_for(what: &str, mut ready: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !ready() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vcfr-fleet-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fleet_status_json(fleet: &Path) -> String {
    let out = Command::new(VCFR)
        .args(["fleet", "status", "--json", "--fleet"])
        .arg(fleet)
        .output()
        .expect("status runs");
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A worker holds an interrupted job iff some checkpoint on its disk
/// has no finished manifest next to it — the gate that makes the
/// SIGKILL land mid-run rather than between jobs.
fn has_unfinished_ckpt(worker: &Path) -> bool {
    std::fs::read_dir(worker.join("jobs")).is_ok_and(|entries| {
        entries.flatten().any(|e| {
            e.file_name().to_str().is_some_and(|n| n.ends_with(".ckpt"))
                && !e.path().with_extension("manifest.json").exists()
        })
    })
}

#[test]
fn killed_worker_chunks_resume_and_merge_bit_identically() {
    // Fleet timeline: coordinator + two workers, kill one mid-campaign.
    let fleet = fresh_dir("fleet");
    let (w1, w2) = (fresh_dir("w1"), fresh_dir("w2"));
    let _coordinator = spawn(
        &["fleet", "serve", "--heartbeat-ms", "50", "--heartbeat-cap-ms", "200", "--lost-after", "3"],
        "--fleet",
        &fleet,
    );
    wait_for("coordinator endpoint", || fleet.join("endpoint").exists());

    let join = |dir: &Path| {
        let child = Command::new(VCFR)
            .args(["fleet", "join", "--workers", "1", "--queue", "8", "--slots", "2", "--fleet"])
            .arg(&fleet)
            .arg("--dir")
            .arg(dir)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("worker spawns");
        Proc(child)
    };
    let worker1 = join(&w1);
    let _worker2 = join(&w2);
    wait_for("both workers registered", || {
        fleet_status_json(&fleet).matches("\"alive\": true").count() >= 2
    });

    // Submit the matrix and the campaign in a fixed order so the six
    // chunks get ids 1..=6 in every run.
    for extra in [
        &["--apps", "bzip2,hmmer", "--modes", "base,vcfr128"][..],
        &["--apps", "bzip2", "--campaign"][..],
    ] {
        wait_for("fleet submission", || {
            Command::new(VCFR)
                .args(["fleet", "submit", "--max", "4000000", "--checkpoint-every", "25000"])
                .args(extra)
                .arg("--fleet")
                .arg(&fleet)
                .output()
                .expect("submit runs")
                .status
                .success()
        });
    }

    // As soon as worker 1 has an interrupted job snapshotted to disk,
    // pull the plug on it — its chunks must be re-dispatched from the
    // checkpoints left behind.
    wait_for("a mid-run checkpoint on worker 1", || has_unfinished_ckpt(&w1));
    drop(worker1); // SIGKILL, mid-campaign

    let merged = fleet.join("results").join("manifests");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !CHUNKS.iter().all(|(file, _)| merged.join(file).exists()) {
        if Instant::now() >= deadline {
            let missing: Vec<&str> = CHUNKS
                .iter()
                .filter(|(f, _)| !merged.join(f).exists())
                .map(|(f, _)| *f)
                .collect();
            panic!(
                "timed out waiting for all merged manifests; missing {missing:?}\nstatus: {}",
                fleet_status_json(&fleet)
            );
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let status = fleet_status_json(&fleet);
    assert!(
        status.contains("\"alive\": false"),
        "the killed worker should be marked lost:\n{status}"
    );
    assert!(
        status.contains("\"resumed\": true"),
        "at least one chunk should have resumed from a recovered checkpoint:\n{status}"
    );

    // Reference timeline: the same six specs on one uninterrupted
    // daemon, in the same submission order (so job ids are 1..=6).
    let solo = fresh_dir("solo");
    {
        let _daemon = spawn(&["serve", "--workers", "2", "--queue", "8"], "--dir", &solo);
        for (_, args) in CHUNKS {
            wait_for("solo submission", || {
                Command::new(VCFR)
                    .arg("submit")
                    .args(args)
                    .args(["--max", "4000000", "--checkpoint-every", "25000", "--dir"])
                    .arg(&solo)
                    .output()
                    .expect("submit runs")
                    .status
                    .success()
            });
        }
        wait_for("solo manifests", || {
            (1..=CHUNKS.len()).all(|id| {
                solo.join("jobs").join(format!("job-{id}.manifest.json")).exists()
            })
        });
    }

    for (id, (file, _)) in CHUNKS.iter().enumerate() {
        let merged_bytes = std::fs::read(merged.join(file)).expect("merged manifest");
        let solo_bytes = std::fs::read(
            solo.join("jobs").join(format!("job-{}.manifest.json", id + 1)),
        )
        .expect("solo manifest");
        assert!(!merged_bytes.is_empty());
        assert_eq!(
            merged_bytes, solo_bytes,
            "{file}: the fleet's merged manifest differs from the single-daemon run"
        );
    }

    for dir in [&fleet, &w1, &w2, &solo] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
