//! Property tests pinning the `ModeSpec` vocabulary: the canonical
//! `Display → FromStr` round-trip is lossless for every spec, the
//! historical wire dialect (`baseline`, bare `vcfr` + a separate DRC
//! field) keeps parsing to the same typed values, and junk never
//! panics the parser.

use proptest::prelude::*;
use vcfr_bench::{ModeSpec, DEFAULT_DRC_ENTRIES};

fn arb_mode() -> impl Strategy<Value = ModeSpec> {
    prop_oneof![
        Just(ModeSpec::Base),
        Just(ModeSpec::Naive),
        // The vocabulary only admits power-of-two DRCs (direct-mapped
        // sets), so that is the space the round-trip is pinned over.
        (0u32..17).prop_map(|k| ModeSpec::Vcfr { drc_entries: 1usize << k }),
    ]
}

proptest! {
    #[test]
    fn display_from_str_round_trips(m in arb_mode()) {
        let shown = m.to_string();
        prop_assert_eq!(shown.parse::<ModeSpec>(), Ok(m));
    }

    #[test]
    fn wire_dialect_agrees_with_canonical(m in arb_mode(), legacy_drc in (0u32..13).prop_map(|k| 1usize << k)) {
        // The canonical token survives the two-field wire form no
        // matter what the separate DRC field says (explicit suffix
        // wins)...
        prop_assert_eq!(ModeSpec::from_wire(&m.to_string(), legacy_drc), Ok(m));
        // ...and the legacy aliases land on the same typed values.
        prop_assert_eq!(ModeSpec::from_wire("baseline", legacy_drc), Ok(ModeSpec::Base));
        prop_assert_eq!(
            ModeSpec::from_wire("vcfr", legacy_drc),
            Ok(ModeSpec::Vcfr { drc_entries: legacy_drc })
        );
    }

    #[test]
    fn parser_rejects_junk_without_panicking(bytes in proptest::collection::vec(0u8..128, 0..12)) {
        let s: String = bytes.iter().map(|&b| b as char).collect();
        // Whatever comes back, it must round-trip if it parsed at all.
        if let Ok(m) = s.parse::<ModeSpec>() {
            prop_assert_eq!(m.to_string().parse::<ModeSpec>(), Ok(m));
        }
    }

}

#[test]
fn bare_vcfr_defaults_are_stable() {
    assert_eq!("vcfr".parse::<ModeSpec>(), Ok(ModeSpec::vcfr_default()));
    assert_eq!(ModeSpec::vcfr_default().drc_entries(), Some(DEFAULT_DRC_ENTRIES));
}
