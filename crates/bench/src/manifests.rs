//! Per-run manifest construction: one `vcfr-obs` manifest per
//! (application, configuration) cell of the experiment matrix, written
//! to `results/manifests/` by the `repro` binary and consumed by
//! `vcfr report`.
//!
//! Everything except the volatile `host` block is a pure function of
//! (workload, seed, machine configuration), so the canonical byte form
//! of every manifest is identical across worker-thread counts.

use crate::campaign::{CampaignCell, FAULTS_PER_RUN};
use crate::frontier::{FrontierRow, FrontierSummary};
use crate::experiments::{
    AppResults, Matrix, MatrixTiming, MulticoreCell, MODE_NAMES, MULTICORE_RERAND_EPOCH, SEED,
};
use std::io;
use std::path::Path;
use vcfr_gadget::FuzzConfig;
use vcfr_obs::{fingerprint, BenchRecord, BenchRun, Json, Manifest, Snapshot};
use vcfr_sim::{EngineKind, IntervalSample, OooConfig, SimConfig, SimStats};

/// DRC entries per matrix column (`None` for the non-VCFR machines),
/// read out of the typed [`ModeSpec`] vocabulary.
fn drc_entries(mode: &str) -> Option<u64> {
    mode.parse::<crate::ModeSpec>().ok().and_then(|m| m.drc_entries()).map(|n| n as u64)
}

/// The `rand` sub-object of a manifest `config` block: the
/// [`RandParams`] point a frontier run was measured at.
///
/// [`RandParams`]: vcfr_core::RandParams
pub fn rand_params_json(p: &vcfr_core::RandParams) -> Json {
    let mut j = Json::obj();
    j.set("entropy_bits", Json::U64(p.entropy_bits as u64));
    j.set("sparsity", Json::U64(p.sparsity as u64));
    match p.rerand_epoch {
        Some(e) => j.set("rerand_epoch", Json::U64(e)),
        None => j.set("rerand_epoch", Json::Null),
    };
    j.set("drc_entries", Json::U64(p.drc.entries as u64));
    j.set("drc_ways", Json::U64(p.drc.ways as u64));
    j
}

/// The manifest `config` block: the standard matrix configuration plus a
/// fingerprint that changes when any machine parameter, the mode, or the
/// seed does.
fn config_json(mode: &str) -> Json {
    let cfg = SimConfig::default();
    let mut j = Json::obj();
    j.set("fingerprint", Json::Str(fingerprint(&format!("{cfg:?} mode={mode} seed={SEED}"))));
    j.set("seed", Json::U64(SEED));
    j.set("freq_ghz", Json::F64(cfg.freq_ghz));
    j.set("il1_bytes", Json::U64(cfg.il1.size_bytes as u64));
    j.set("dl1_bytes", Json::U64(cfg.dl1.size_bytes as u64));
    j.set("l2_bytes", Json::U64(cfg.l2.size_bytes as u64));
    match drc_entries(mode) {
        Some(n) => j.set("drc_entries", Json::U64(n)),
        None => j.set("drc_entries", Json::Null),
    };
    j
}

/// One interval sample as a manifest array element.
fn sample_json(s: &IntervalSample) -> Json {
    let mut j = Json::obj();
    j.set("first_inst", Json::U64(s.first_inst));
    j.set("instructions", Json::U64(s.instructions));
    j.set("cycles", Json::U64(s.cycles));
    j.set("ipc", Json::F64(s.ipc));
    j.set("il1_miss_rate", Json::F64(s.il1_miss_rate));
    j.set("drc_miss_rate", Json::F64(s.drc_miss_rate));
    j
}

/// The manifest `derived` block: the headline per-run metrics the
/// report renders without re-deriving from raw counters.
fn derived_json(stats: &SimStats) -> Json {
    let mut j = Json::obj();
    j.set("ipc", Json::F64(stats.ipc()));
    j.set("il1_miss_rate", Json::F64(stats.il1.miss_rate()));
    j.set("dl1_miss_rate", Json::F64(stats.dl1.miss_rate()));
    j.set("branch_mispredict_rate", Json::F64(stats.branch.mispredict_rate()));
    j.set(
        "drc_miss_rate",
        match stats.drc {
            Some(d) => Json::F64(d.miss_rate()),
            None => Json::Null,
        },
    );
    j
}

/// The manifest `audit` block: the cycle-accounting identity terms plus
/// the audit verdict at the default tolerance.
fn audit_json(stats: &SimStats) -> Json {
    engine_audit_json(EngineKind::InOrder, stats)
}

/// [`audit_json`] with the identity set matched to the engine that
/// produced `stats`: the out-of-order core is audited through
/// `audit_ooo` (its cycles may legitimately undercut the in-order
/// floor when IPC exceeds 1); the multicore aggregate sums per-core
/// counters, so the in-order identities close on it unchanged.
fn engine_audit_json(engine: EngineKind, stats: &SimStats) -> Json {
    let accounting = stats.accounting();
    let report = match engine {
        EngineKind::Ooo => {
            accounting.audit_ooo(OooConfig::default().width as u64, stats.instructions)
        }
        EngineKind::InOrder | EngineKind::Multicore { .. } => accounting.audit(),
    };
    let mut j = accounting.to_json();
    j.set("tolerance", Json::F64(report.tolerance));
    j.set("passed", Json::Bool(report.passed()));
    j
}

/// Builds the manifest for one matrix cell.
pub fn build_manifest(
    app: &str,
    mode: &str,
    stats: &SimStats,
    samples: &[IntervalSample],
    host: Json,
) -> Manifest {
    build_engine_manifest(app, mode, EngineKind::InOrder, stats, samples, host)
}

/// [`build_manifest`] for a run of any [`EngineKind`]: same schema,
/// with the `audit` block computed by the identity set that matches
/// the engine. The service daemon uses this for `ooo`/`mcN` jobs.
pub fn build_engine_manifest(
    app: &str,
    mode: &str,
    engine: EngineKind,
    stats: &SimStats,
    samples: &[IntervalSample],
    host: Json,
) -> Manifest {
    let mut m = Manifest::new(app, mode);
    m.set_config(config_json(mode));
    m.set_counters(&stats.snapshot());
    m.set_derived(derived_json(stats));
    m.set_audit(engine_audit_json(engine, stats));
    m.set_samples(samples.iter().map(sample_json).collect());
    m.set_host(host);
    m
}

/// The stats for matrix column `mode_idx` of one application row.
fn mode_stats(r: &AppResults, mode_idx: usize) -> &SimStats {
    match mode_idx {
        0 => &r.base,
        1 => &r.naive,
        2 => &r.vcfr512,
        3 => &r.vcfr128,
        4 => &r.vcfr64,
        _ => unreachable!("matrix has five configurations"),
    }
}

/// Builds one manifest per (application, configuration) cell from the
/// matrix results and the per-run timing.
pub fn build_matrix_manifests(matrix: &Matrix, timing: &MatrixTiming) -> Vec<Manifest> {
    let mut out = Vec::with_capacity(matrix.len() * MODE_NAMES.len());
    for row in matrix {
        for (mi, mode) in MODE_NAMES.iter().enumerate() {
            let run = timing
                .runs
                .iter()
                .find(|r| r.app == row.name && r.mode == *mode)
                .expect("every cell has a timing record");
            let mut host = Json::obj();
            host.set("wall_s", Json::F64(run.wall_s));
            host.set("insts_per_s", Json::F64(run.insts_per_s));
            host.set("threads", Json::U64(timing.threads as u64));
            out.push(build_manifest(row.name, mode, mode_stats(row, mi), &run.samples, host));
        }
    }
    out
}

/// Writes each manifest to `dir` under its conventional file name,
/// creating the directory; returns how many were written.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_manifests(dir: &Path, manifests: &[Manifest]) -> io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    for m in manifests {
        std::fs::write(dir.join(m.file_name()), m.to_string_pretty())?;
    }
    Ok(manifests.len())
}

/// The manifest `config` block of a fault-campaign cell: the matrix
/// configuration plus the campaign parameters (fault count, policy),
/// all folded into the fingerprint.
fn fault_config_json(mode: &str) -> Json {
    let mut j = config_json(mode);
    j.set("faults_per_run", Json::U64(FAULTS_PER_RUN as u64));
    j.set("containment_policy", Json::Str("recover".into()));
    j.set(
        "fingerprint",
        Json::Str(fingerprint(&format!(
            "faults mode={mode} seed={SEED} count={FAULTS_PER_RUN} policy=recover"
        ))),
    );
    j
}

/// Builds the manifest for one fault-campaign cell: the standard
/// `sim.*` counters plus the `fault.*` counters, detection coverage in
/// the `derived` block, and the usual cycle-accounting audit (faulted
/// runs stay auditable — recovery charges are ordinary stall cycles).
pub fn build_fault_manifest(cell: &CampaignCell, host: Json) -> Manifest {
    build_fault_manifest_parts(cell.app, cell.mode, &cell.faults, &cell.stats, host)
}

/// [`build_fault_manifest`] from loose parts, for callers (the service
/// daemon) that hold the run's pieces rather than a [`CampaignCell`].
/// `mode` is the matrix mode (`base`, `vcfr128`, …); the manifest mode
/// gets the `faults-` prefix.
pub fn build_fault_manifest_parts(
    app: &str,
    mode: &str,
    f: &vcfr_sim::FaultStats,
    stats: &SimStats,
    host: Json,
) -> Manifest {
    let mut m = Manifest::new(app, &format!("faults-{mode}"));
    m.set_config(fault_config_json(mode));
    let mut counters = stats.snapshot().counters;
    counters.extend([
        ("fault.injected".to_string(), f.injected),
        ("fault.detected.parity".to_string(), f.detected_parity),
        ("fault.detected.translation".to_string(), f.detected_translation),
        ("fault.detected.visibility".to_string(), f.detected_visibility),
        ("fault.detected.decode".to_string(), f.detected_decode),
        ("fault.contained".to_string(), f.contained),
        ("fault.silent".to_string(), f.silent),
        ("fault.masked".to_string(), f.masked),
        ("fault.emergency_rerands".to_string(), f.emergency_rerands),
    ]);
    m.set_counters(&Snapshot::from_counters(counters));
    let mut d = derived_json(stats);
    d.set("fault_coverage", Json::F64(f.coverage()));
    d.set("fault_detected", Json::U64(f.detected()));
    m.set_derived(d);
    m.set_audit(audit_json(stats));
    m.set_host(host);
    m
}

/// The manifest `config` block of a frontier point: the machine
/// configuration, the [`RandParams`](vcfr_core::RandParams) point (as
/// the `rand` sub-object), and the attacker budget — all folded into the
/// fingerprint.
fn frontier_config_json(row: &FrontierRow, fz: &FuzzConfig) -> Json {
    let cfg = SimConfig::default();
    let params = row.point.params();
    let mode = row.point.label();
    let mut j = Json::obj();
    j.set(
        "fingerprint",
        Json::Str(fingerprint(&format!(
            "{cfg:?} mode={mode} seed={SEED} rand={params:?} fuzz={fz:?}"
        ))),
    );
    j.set("seed", Json::U64(SEED));
    j.set("rand", rand_params_json(&params));
    j.set("drc_entries", Json::U64(params.drc.entries as u64));
    j.set("fuzz_trials", Json::U64(u64::from(fz.trials)));
    j.set("fuzz_probes_per_trial", Json::U64(u64::from(fz.probes_per_trial)));
    j.set("fuzz_exec_budget", Json::U64(fz.exec_budget));
    j
}

/// Builds the manifest of one frontier point: the standard `sim.*`
/// counters of the clean VCFR run, the fault counters of the faulted
/// run, and the three frontier objectives in the `derived` block.
pub fn build_frontier_manifest(row: &FrontierRow, fz: &FuzzConfig, host: Json) -> Manifest {
    let mut m = Manifest::new(row.app, &row.point.label());
    m.set_config(frontier_config_json(row, fz));
    let mut counters = row.stats.snapshot().counters;
    counters.extend([
        ("fault.injected".to_string(), row.faults.injected),
        ("fault.silent".to_string(), row.faults.silent),
        ("fault.detected".to_string(), row.faults.detected()),
        ("attack.trials".to_string(), u64::from(row.trials)),
        ("attack.successes".to_string(), u64::from(row.successes)),
        ("attack.pages_leaked".to_string(), row.pages_leaked as u64),
    ]);
    m.set_counters(&Snapshot::from_counters(counters));
    let mut d = derived_json(&row.stats);
    d.set("span_bytes", Json::U64(row.span_bytes));
    d.set("attack_success", Json::F64(row.attack_success));
    d.set("slowdown", Json::F64(row.slowdown));
    d.set("base_cycles", Json::U64(row.base_cycles));
    d.set("fault_coverage", Json::F64(row.fault_coverage));
    m.set_derived(d);
    m.set_audit(audit_json(&row.stats));
    m.set_host(host);
    m
}

/// One manifest per frontier row (host block carries the thread count
/// only; the canonical bytes are thread-independent).
pub fn build_frontier_manifests(
    rows: &[FrontierRow],
    fz: &FuzzConfig,
    threads: usize,
) -> Vec<Manifest> {
    rows.iter()
        .map(|r| {
            let mut host = Json::obj();
            host.set("threads", Json::U64(threads as u64));
            build_frontier_manifest(r, fz, host)
        })
        .collect()
}

/// Reads a frontier point's headline numbers back out of its manifest
/// (`None` for manifests of any other campaign) — how `vcfr report
/// --frontier` rebuilds the Pareto table from a merged tree.
pub fn frontier_summary_from_manifest(m: &Manifest) -> Option<FrontierSummary> {
    let bits = m.mode().strip_prefix("frontier-e")?.parse::<u32>().ok()?;
    let j = m.json();
    let derived = |key: &str| j.get_path(&format!("derived.{key}"));
    Some(FrontierSummary {
        app: m.app().to_string(),
        entropy_bits: bits,
        span_bytes: derived("span_bytes")?.as_u64()?,
        successes: m.counter("attack.successes") as u32,
        trials: m.counter("attack.trials") as u32,
        attack_success: derived("attack_success")?.as_f64()?,
        pages_leaked: m.counter("attack.pages_leaked"),
        slowdown: derived("slowdown")?.as_f64()?,
        fault_coverage: derived("fault_coverage")?.as_f64()?,
    })
}

/// One manifest per campaign cell (host block carries the thread count
/// only; the canonical bytes are thread-independent).
pub fn build_campaign_manifests(cells: &[CampaignCell], threads: usize) -> Vec<Manifest> {
    cells
        .iter()
        .map(|c| {
            let mut host = Json::obj();
            host.set("threads", Json::U64(threads as u64));
            build_fault_manifest(c, host)
        })
        .collect()
}

/// The manifest `config` block of a multicore rerand cell: the matrix
/// configuration plus the engine kind, the pairing, and the rerand
/// epoch, all folded into the fingerprint.
fn multicore_config_json(cell: &MulticoreCell) -> Json {
    let mut j = config_json("vcfr128");
    j.set("engine", Json::Str("mc2".into()));
    j.set("rerand_epoch", Json::U64(MULTICORE_RERAND_EPOCH));
    j.set(
        "fingerprint",
        Json::Str(fingerprint(&format!(
            "multicore vcfr={} base={} budget={} epoch={MULTICORE_RERAND_EPOCH} seed={SEED}",
            cell.vcfr_app, cell.base_app, cell.budget
        ))),
    );
    j
}

/// Builds the manifest for one multicore rerand cell: the aggregate
/// `sim.*` counters (per-core sums; shared L2/DRAM once), a `coreN.*`
/// breakdown, the shared-L2 view in `derived`, and the usual
/// cycle-accounting audit — the in-order identities hold on the
/// aggregate because its cycles are the per-core sum.
pub fn build_multicore_manifest(cell: &MulticoreCell, host: Json) -> Manifest {
    let app = format!("{}+{}", cell.vcfr_app, cell.base_app);
    let mut m = Manifest::new(&app, "mc2-vcfr128");
    m.set_config(multicore_config_json(cell));
    let mut counters = cell.output.stats.snapshot().counters;
    for (i, s) in cell.output.per_core.iter().enumerate() {
        counters.extend([
            (format!("core{i}.instructions"), s.instructions),
            (format!("core{i}.cycles"), s.cycles),
            (format!("core{i}.rerand.epochs"), s.rerand_epochs),
            (format!("core{i}.stall.contention"), s.contention_stall_cycles),
        ]);
    }
    counters.push(("mc.makespan_cycles".to_string(), cell.output.cycles));
    m.set_counters(&Snapshot::from_counters(counters));
    let mut d = derived_json(&cell.output.stats);
    d.set("shared_l2_miss_rate", Json::F64(cell.output.shared_l2.miss_rate()));
    d.set("core0_ipc", Json::F64(cell.output.per_core[0].ipc()));
    d.set("core1_ipc", Json::F64(cell.output.per_core[1].ipc()));
    m.set_derived(d);
    m.set_audit(audit_json(&cell.output.stats));
    m.set_host(host);
    m
}

/// One manifest per multicore rerand cell (host block carries the
/// thread count only; the canonical bytes are thread-independent).
pub fn build_multicore_manifests(cells: &[MulticoreCell], threads: usize) -> Vec<Manifest> {
    cells
        .iter()
        .map(|c| {
            let mut host = Json::obj();
            host.set("threads", Json::U64(threads as u64));
            build_multicore_manifest(c, host)
        })
        .collect()
}

/// The `BENCH_repro.json` record of one matrix run (shared writer in
/// `vcfr-obs`; schema v3 with host metadata, per-run throughput, and
/// the superblock flag).
pub fn bench_record(t: &MatrixTiming) -> BenchRecord {
    let (host_cores, cargo_profile) = BenchRecord::host_defaults();
    BenchRecord {
        threads: t.threads,
        host_cores,
        cargo_profile,
        randomize_s: t.randomize_s,
        matrix_wall_s: t.wall_s,
        runs: t
            .runs
            .iter()
            .map(|r| BenchRun {
                app: r.app.to_string(),
                mode: r.mode.to_string(),
                instructions: r.instructions,
                wall_s: r.wall_s,
                insts_per_s: r.insts_per_s,
                superblock: r.superblock,
            })
            .collect(),
    }
}
