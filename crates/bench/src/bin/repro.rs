//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro                # run everything
//! repro fig3 fig12     # run selected experiments
//! repro check --threads 4   # CI gate on an explicit worker count
//! repro obs-smoke      # tiny observability end-to-end check
//! repro faults         # 11-app fault-injection campaign (base vs VCFR)
//! repro faults-smoke   # 1-app seeded campaign + determinism check
//! repro frontier       # entropy/security frontier sweep (Pareto table)
//! repro frontier --shard 0/2  # one shard of the sweep (fleet node)
//! repro frontier-smoke # 2-point sweep + thread-determinism check
//! repro throughput     # superblock fast-path rate on the no-stall program
//! repro telemetry-smoke  # manifests + checkpoints byte-identical, tap on vs off
//! repro multicore-smoke  # VCFR+base shared-L2 cells, rerand mid-run, thread-stable
//! repro fig3 --scale 4 # matrix over the scale-4 suite (longer runs)
//! ```
//!
//! Whenever the simulation matrix runs, per-run wall-clock timing is
//! written to `BENCH_repro.json` in the current directory and one run
//! manifest per (app, configuration) cell goes to `results/manifests/`.
//! The worker count comes from `--threads N` (or `N` via `--threads=N`),
//! falling back to `RAYON_NUM_THREADS` and then the machine's
//! parallelism.

use std::path::Path;
use vcfr_bench::experiments::{self as ex, Matrix, MatrixTiming};
use vcfr_bench::{campaign, manifests};
use vcfr_obs::{CycleAccounting, Manifest};

fn want(args: &[String], name: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a == name)
}

fn header(title: &str, paper: &str) {
    println!("\n=== {title} ===");
    println!("    paper: {paper}");
}

/// Pulls `--threads N` / `--threads=N` out of `args` (so the remaining
/// arguments are plain experiment names), returning the worker count.
fn parse_threads(args: &mut Vec<String>) -> usize {
    let mut threads = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threads" && i + 1 < args.len() {
            threads = args[i + 1].parse::<usize>().ok();
            args.drain(i..i + 2);
        } else if let Some(v) = args[i].strip_prefix("--threads=") {
            threads = v.parse::<usize>().ok();
            args.remove(i);
        } else {
            i += 1;
        }
    }
    threads.filter(|&n| n > 0).unwrap_or_else(ex::default_threads)
}

/// Pulls `--scale N` / `--scale=N` out of `args`, returning the
/// workload scale factor (default 1, the calibrated suite). `check`
/// always gates on scale 1 — its bands are calibrated for the unscaled
/// programs.
fn parse_scale(args: &mut Vec<String>) -> u64 {
    let mut scale = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--scale" && i + 1 < args.len() {
            scale = args[i + 1].parse::<u64>().ok();
            args.drain(i..i + 2);
        } else if let Some(v) = args[i].strip_prefix("--scale=") {
            scale = v.parse::<u64>().ok();
            args.remove(i);
        } else {
            i += 1;
        }
    }
    scale.filter(|&n| n > 0).unwrap_or(1)
}

/// Pulls `--shard i/n` / `--shard=i/n` out of `args`, returning the
/// shard coordinates when present (the fleet runs one `repro frontier
/// --shard i/n` per node and merges the manifest trees).
fn parse_shard(args: &mut Vec<String>) -> Option<(usize, usize)> {
    let mut shard = None;
    let mut i = 0;
    while i < args.len() {
        let spec = if args[i] == "--shard" && i + 1 < args.len() {
            let v = args[i + 1].clone();
            args.drain(i..i + 2);
            Some(v)
        } else if let Some(v) = args[i].strip_prefix("--shard=") {
            let v = v.to_string();
            args.remove(i);
            Some(v)
        } else {
            i += 1;
            None
        };
        if let Some(v) = spec {
            shard = v.split_once('/').and_then(|(a, b)| {
                Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?))
            });
        }
    }
    shard.filter(|&(i, n)| n > 0 && i < n)
}

/// The workload the frontier sweeps: compact enough that the region
/// span — the attacker's search space — is set by `entropy_bits` at
/// every standard point.
const FRONTIER_APP: &str = "sjeng";

/// Runs the entropy/security frontier sweep (optionally one shard of
/// it), prints the Pareto table, and writes one manifest per point to
/// `out_dir`.
fn run_frontier_cmd(
    threads: usize,
    shard: Option<(usize, usize)>,
    out_dir: &Path,
) -> Vec<vcfr_bench::FrontierRow> {
    let w = vcfr_workloads::by_name(FRONTIER_APP).expect("frontier app exists");
    let points: Vec<vcfr_bench::FrontierPoint> = match shard {
        Some((i, n)) => vcfr_bench::shard_frontier(&vcfr_bench::FRONTIER_POINTS, n).swap_remove(i),
        None => vcfr_bench::FRONTIER_POINTS.to_vec(),
    };
    let fz = vcfr_bench::frontier_fuzz_config();
    eprintln!(
        "frontier: {FRONTIER_APP} x {} point(s), {} trials x {} probes per point, {} thread(s) ...",
        points.len(),
        fz.trials,
        fz.probes_per_trial,
        threads
    );
    let rows = vcfr_bench::run_frontier(&w, &points, &fz, threads);
    header(
        "Entropy/security frontier - Pareto table",
        "attacker success vs slowdown vs fault-detection coverage per entropy point",
    );
    let summaries: Vec<_> = rows.iter().map(|r| r.summary()).collect();
    print!("{}", vcfr_bench::frontier_pareto_table(&summaries));
    let ms = manifests::build_frontier_manifests(&rows, &fz, threads);
    match manifests::write_manifests(out_dir, &ms) {
        Ok(n) => eprintln!("wrote {n} frontier manifests to {}/", out_dir.display()),
        Err(e) => eprintln!("warning: could not write frontier manifests: {e}"),
    }
    rows
}

/// Tiny end-to-end check of the frontier: two entropy points on a
/// capped budget, manifests byte-identical across worker-thread counts,
/// span strictly growing with entropy, and the manifest round-trip
/// reproducing every headline number.
fn frontier_smoke() -> bool {
    let mut w = vcfr_workloads::by_name(FRONTIER_APP).expect("frontier app exists");
    w.max_insts = w.max_insts.min(40_000);
    let points = [
        vcfr_bench::FrontierPoint { entropy_bits: 13, sparsity: 2 },
        vcfr_bench::FrontierPoint { entropy_bits: 17, sparsity: 2 },
    ];
    let fz = vcfr_gadget::FuzzConfig {
        trials: 4,
        probes_per_trial: 24,
        ..vcfr_bench::frontier_fuzz_config()
    };
    eprintln!(
        "frontier-smoke: {FRONTIER_APP} x {{e13, e17}}, {} inst budget, {} trials x {} probes",
        w.max_insts, fz.trials, fz.probes_per_trial
    );
    let mut ok = true;

    let rows1 = vcfr_bench::run_frontier(&w, &points, &fz, 1);
    let rows2 = vcfr_bench::run_frontier(&w, &points, &fz, 2);
    let ms1 = manifests::build_frontier_manifests(&rows1, &fz, 1);
    let ms2 = manifests::build_frontier_manifests(&rows2, &fz, 2);
    for (a, b) in ms1.iter().zip(&ms2) {
        if a.canonical_bytes() != b.canonical_bytes() {
            eprintln!("FAIL {}: canonical manifest differs between 1 and 2 threads", a.file_name());
            ok = false;
        } else {
            println!("PASS {:<28} thread-stable", a.file_name());
        }
    }
    if rows1[0].span_bytes >= rows1[1].span_bytes {
        eprintln!(
            "FAIL: span must grow with entropy ({} vs {})",
            rows1[0].span_bytes, rows1[1].span_bytes
        );
        ok = false;
    }
    for (row, m) in rows1.iter().zip(&ms1) {
        match manifests::frontier_summary_from_manifest(m) {
            Some(s) if s == row.summary() => {
                println!(
                    "PASS {:<28} atk {:.3}, slowdown {:.3}x, cover {:.3}",
                    m.file_name(),
                    s.attack_success,
                    s.slowdown,
                    s.fault_coverage
                );
            }
            Some(_) => {
                eprintln!("FAIL {}: manifest summary differs from the run", m.file_name());
                ok = false;
            }
            None => {
                eprintln!("FAIL {}: manifest does not read back as a frontier point", m.file_name());
                ok = false;
            }
        }
    }
    if let Err(e) = manifests::write_manifests(Path::new("target/frontier-smoke-manifests"), &ms1)
    {
        eprintln!("FAIL: could not write manifests: {e}");
        ok = false;
    }
    println!("frontier-smoke: {}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// Runs the no-stall superblock throughput measurement and prints both
/// rates; returns the fast-path run for the artefact writer.
fn throughput() -> (ex::RunTiming, ex::RunTiming) {
    let (on, off) = ex::nostall_throughput();
    header(
        "Superblock fast path - no-stall replay throughput",
        "decode-once straight-line replay with batched cycle accounting",
    );
    println!("{:<24} {:>14} {:>14}", "configuration", "insts", "insts/s");
    for r in [&on, &off] {
        println!(
            "{:<24} {:>14} {:>14.2e}",
            if r.superblock { "superblocks on" } else { "superblocks off" },
            r.instructions,
            r.insts_per_s
        );
    }
    println!(
        "speedup: {:.2}x{}",
        on.insts_per_s / off.insts_per_s.max(1e-9),
        if on.insts_per_s >= 100e6 { "  (>= 100M insts/s)" } else { "" }
    );
    (on, off)
}

/// Writes the benchmark artefacts of a matrix run: the timing record
/// (`BENCH_repro.json`, shared writer in `vcfr-obs`) and one run
/// manifest per (app, configuration) cell under `results/manifests/`.
fn write_artifacts(m: &Matrix, t: &MatrixTiming) {
    // The artefact also records the superblock fast-path rate on the
    // no-stall program (superblocks on and off), so the throughput
    // claim regenerates with every matrix run.
    let (sb_on, sb_off) = ex::nostall_throughput();
    eprintln!(
        "superblock no-stall throughput: {:.1}M insts/s on, {:.1}M off",
        sb_on.insts_per_s / 1e6,
        sb_off.insts_per_s / 1e6
    );
    let mut timed = t.clone();
    timed.runs.push(sb_on);
    timed.runs.push(sb_off);
    match manifests::bench_record(&timed).write_to(Path::new("BENCH_repro.json")) {
        Ok(()) => eprintln!(
            "wrote BENCH_repro.json ({} runs, {:.2}s matrix wall, {} thread{})",
            timed.runs.len(),
            t.wall_s,
            t.threads,
            if t.threads == 1 { "" } else { "s" }
        ),
        Err(e) => eprintln!("warning: could not write BENCH_repro.json: {e}"),
    }
    let ms = manifests::build_matrix_manifests(m, t);
    match manifests::write_manifests(Path::new("results/manifests"), &ms) {
        Ok(n) => eprintln!("wrote {n} run manifests to results/manifests/"),
        Err(e) => eprintln!("warning: could not write run manifests: {e}"),
    }
}

/// Tiny end-to-end check of the observability layer: runs one small app
/// through all five configurations, audits the cycle accounting of every
/// cell, and verifies manifests round-trip and are canonically identical
/// across worker-thread counts.
fn obs_smoke() -> bool {
    let mut w = vcfr_workloads::by_name("bzip2").expect("bzip2 exists");
    w.max_insts = w.max_insts.min(60_000);
    let suite = [w];
    eprintln!("obs-smoke: bzip2 x 5 configs, {} inst budget per run", suite[0].max_insts);

    let (m1, t1) = ex::matrix_over(&suite, 1);
    let (m2, t2) = ex::matrix_over(&suite, 2);
    let ms1 = manifests::build_matrix_manifests(&m1, &t1);
    let ms2 = manifests::build_matrix_manifests(&m2, &t2);
    let mut ok = true;

    // Manifests are byte-identical across thread counts once the
    // volatile host block is stripped.
    for (a, b) in ms1.iter().zip(&ms2) {
        if a.canonical_bytes() != b.canonical_bytes() {
            eprintln!("FAIL {}: canonical manifest differs between 1 and 2 threads", a.file_name());
            ok = false;
        }
    }

    // Every cell's cycle accounting passes the audit; the identity terms
    // survive the manifest round trip.
    let dir = Path::new("target/obs-smoke-manifests");
    if let Err(e) = manifests::write_manifests(dir, &ms1) {
        eprintln!("FAIL: could not write manifests: {e}");
        return false;
    }
    for m in &ms1 {
        let text = match std::fs::read_to_string(dir.join(m.file_name())) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {}: unreadable: {e}", m.file_name());
                ok = false;
                continue;
            }
        };
        let back = match Manifest::from_str(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("FAIL {}: {e}", m.file_name());
                ok = false;
                continue;
            }
        };
        let audit = back.json().get("audit").and_then(CycleAccounting::from_json);
        let Some(accounting) = audit else {
            eprintln!("FAIL {}: manifest has no audit block", m.file_name());
            ok = false;
            continue;
        };
        let report = accounting.audit();
        if report.passed() {
            println!(
                "PASS {:<22} {:>9} cycles, coverage {:.3}",
                m.file_name(),
                accounting.cycles,
                accounting.coverage()
            );
        } else {
            ok = false;
            for f in &report.failures {
                eprintln!("FAIL {}: {f}", m.file_name());
            }
        }
    }
    println!("obs-smoke: {}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// End-to-end gate on the telemetry tap's zero-observability cost: the
/// simulated results must be byte-identical with progress events on or
/// off. Checks (1) canonical matrix manifests across {tap off, tap on}
/// × {1, 2} worker threads, (2) mid-run checkpoints from a tapped and
/// an untapped session, and (3) that the tap actually fired.
fn telemetry_smoke() -> bool {
    use std::sync::atomic::{AtomicU64, Ordering};
    use vcfr_core::DrcConfig;
    use vcfr_sim::{Mode, Session, SimConfig};

    let mut w = vcfr_workloads::by_name("bzip2").expect("bzip2 exists");
    w.max_insts = w.max_insts.min(60_000);
    let suite = [w];
    eprintln!(
        "telemetry-smoke: bzip2 x 5 configs, {} inst budget, tap on/off x 1/2 threads",
        suite[0].max_insts
    );
    let mut ok = true;

    // (1) Manifests: tap off on one thread is the reference; every other
    // (tap, threads) combination must produce the same canonical bytes.
    let (m_ref, t_ref) = ex::matrix_over(&suite, 1);
    let ms_ref = manifests::build_matrix_manifests(&m_ref, &t_ref);
    let events = AtomicU64::new(0);
    for threads in [1usize, 2] {
        for tap in [false, true] {
            if threads == 1 && !tap {
                continue; // that is the reference run
            }
            let (m, t) = if tap {
                ex::matrix_over_tapped(
                    &suite,
                    threads,
                    10_000,
                    &|_| {
                        events.fetch_add(1, Ordering::Relaxed);
                    },
                    &|_| {},
                )
            } else {
                ex::matrix_over(&suite, threads)
            };
            let ms = manifests::build_matrix_manifests(&m, &t);
            for (a, b) in ms_ref.iter().zip(&ms) {
                if a.canonical_bytes() == b.canonical_bytes() {
                    println!(
                        "PASS {:<22} identical (tap {}, {} thread{})",
                        a.file_name(),
                        if tap { "on" } else { "off" },
                        threads,
                        if threads == 1 { "" } else { "s" }
                    );
                } else {
                    eprintln!(
                        "FAIL {}: manifest differs with tap {} on {} thread(s)",
                        a.file_name(),
                        if tap { "on" } else { "off" },
                        threads
                    );
                    ok = false;
                }
            }
        }
    }
    let fired = events.load(Ordering::Relaxed);
    if fired == 0 {
        eprintln!("FAIL: the telemetry tap never fired");
        ok = false;
    } else {
        println!("PASS tap fired {fired} progress events across the tapped runs");
    }

    // (2) Checkpoints: drive a tapped and an untapped session to the
    // same instruction boundary; the checkpoint payloads must be
    // byte-identical (the progress cursor lives outside them).
    let w = &suite[0];
    let rp = ex::randomize_workload(&w.image);
    let cfg = SimConfig::default();
    let mode = || Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) };
    let mut tapped = Session::new(mode(), &cfg, w.max_insts)
        .expect("session builds")
        .with_progress(5_000, |_| {});
    let mut plain = Session::new(mode(), &cfg, w.max_insts).expect("session builds");
    tapped.run_for(20_000).expect("tapped chunk runs");
    plain.run_for(20_000).expect("plain chunk runs");
    if tapped.checkpoint() == plain.checkpoint() {
        println!(
            "PASS checkpoint identical at {} instructions, tap on vs off",
            plain.instructions()
        );
    } else {
        eprintln!("FAIL: checkpoint differs between tapped and untapped sessions");
        ok = false;
    }

    println!("telemetry-smoke: {}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// End-to-end gate on the multicore rerand cells: a VCFR core swaps its
/// live layout mid-run while a baseline sibling streams through the
/// shared L2. Checks (1) canonical manifests byte-identical across 1
/// vs 2 worker threads, (2) rerand epochs fired on the VCFR core and
/// only there, (3) every cell's aggregate cycle accounting audits, and
/// (4) the VCFR core's architectural output matches a solo in-order
/// baseline run of the same app.
fn multicore_smoke() -> bool {
    use vcfr_sim::{simulate, Mode, SimConfig};

    let budget = 120_000;
    eprintln!(
        "multicore-smoke: VCFR+base pairings over the shared L2, {} inst budget per core, \
         rerand every {} insts",
        budget,
        ex::MULTICORE_RERAND_EPOCH
    );
    let cells1 = ex::multicore_rerand_cells(1, budget);
    let cells2 = ex::multicore_rerand_cells(2, budget);
    let ms1 = manifests::build_multicore_manifests(&cells1, 1);
    let ms2 = manifests::build_multicore_manifests(&cells2, 2);
    let mut ok = true;

    for (a, b) in ms1.iter().zip(&ms2) {
        if a.canonical_bytes() != b.canonical_bytes() {
            eprintln!(
                "FAIL {}: canonical manifest differs between 1 and 2 threads",
                a.file_name()
            );
            ok = false;
        }
    }

    for (cell, m) in cells1.iter().zip(&ms1) {
        let (core0, core1) = (&cell.output.per_core[0], &cell.output.per_core[1]);
        if core0.rerand_epochs == 0 {
            eprintln!("FAIL {}: the VCFR core never re-randomized", m.file_name());
            ok = false;
        }
        if core1.rerand_epochs != 0 {
            eprintln!(
                "FAIL {}: the baseline sibling recorded {} rerand epochs",
                m.file_name(),
                core1.rerand_epochs
            );
            ok = false;
        }
        let report = cell.output.stats.accounting().audit();
        if !report.passed() {
            ok = false;
            for f in &report.failures {
                eprintln!("FAIL {}: {f}", m.file_name());
            }
            continue;
        }
        // Re-randomizing next to a streaming sibling must not change
        // what the program computes: the VCFR core's output equals a
        // solo in-order baseline run of the same app.
        let w = vcfr_workloads::by_name(cell.vcfr_app).expect("known workload");
        let solo = simulate(Mode::Baseline(&w.image), &SimConfig::default(), budget)
            .expect("solo baseline runs");
        if cell.output.outcomes[0].output != solo.outcome.output {
            eprintln!(
                "FAIL {}: the VCFR core's output differs from the solo baseline",
                m.file_name()
            );
            ok = false;
            continue;
        }
        println!(
            "PASS {:<28} {:>2} epoch swaps, contention {:>6} cycles, shared-L2 miss {:.1}%",
            m.file_name(),
            core0.rerand_epochs,
            cell.output.stats.contention_stall_cycles,
            100.0 * cell.output.shared_l2.miss_rate()
        );
    }

    if let Err(e) =
        manifests::write_manifests(Path::new("target/multicore-smoke-manifests"), &ms1)
    {
        eprintln!("FAIL: could not write manifests: {e}");
        ok = false;
    }
    println!("multicore-smoke: {}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// Runs the fault-injection campaign over `suite`, prints the coverage
/// table, and writes one manifest per (app, configuration) cell under
/// `out_dir`.
fn run_faults(
    suite: &[vcfr_workloads::Workload],
    threads: usize,
    out_dir: &Path,
) -> Vec<campaign::CampaignCell> {
    eprintln!(
        "fault campaign: {} app(s) x {{base, vcfr128}}, {} faults per run, {} thread(s) ...",
        suite.len(),
        campaign::FAULTS_PER_RUN,
        threads
    );
    let cells = campaign::run_campaign(suite, threads);
    header(
        "Fault-injection campaign - detection coverage",
        "the dependability half: the mediation layer detects corrupted control-flow state",
    );
    print!("{}", campaign::coverage_table(&cells));
    let ms = manifests::build_campaign_manifests(&cells, threads);
    match manifests::write_manifests(out_dir, &ms) {
        Ok(n) => eprintln!("wrote {n} campaign manifests to {}/", out_dir.display()),
        Err(e) => eprintln!("warning: could not write campaign manifests: {e}"),
    }
    cells
}

/// Tiny end-to-end check of the fault campaign: one app, seeded
/// schedule, manifests byte-identical across worker-thread counts, every
/// cell's cycle accounting auditable, and VCFR strictly ahead of the
/// baseline on detection coverage.
fn faults_smoke() -> bool {
    let mut w = vcfr_workloads::by_name("bzip2").expect("bzip2 exists");
    w.max_insts = w.max_insts.min(60_000);
    let suite = [w];
    eprintln!("faults-smoke: bzip2 x {{base, vcfr128}}, {} inst budget", suite[0].max_insts);

    let cells = run_faults(&suite, 1, Path::new("target/faults-smoke-manifests"));
    let again = campaign::run_campaign(&suite, 2);
    let ms1 = manifests::build_campaign_manifests(&cells, 1);
    let ms2 = manifests::build_campaign_manifests(&again, 2);
    let mut ok = true;

    for (a, b) in ms1.iter().zip(&ms2) {
        if a.canonical_bytes() != b.canonical_bytes() {
            eprintln!(
                "FAIL {}: canonical manifest differs between 1 and 2 threads",
                a.file_name()
            );
            ok = false;
        }
    }
    for (cell, m) in cells.iter().zip(&ms1) {
        let audit = m.json().get("audit").and_then(CycleAccounting::from_json);
        match audit.map(|a| a.audit()) {
            Some(report) if report.passed() => {
                println!(
                    "PASS {:<26} {:>3} injected, coverage {:.3}",
                    m.file_name(),
                    cell.faults.injected,
                    cell.faults.coverage()
                );
            }
            Some(report) => {
                ok = false;
                for f in &report.failures {
                    eprintln!("FAIL {}: {f}", m.file_name());
                }
            }
            None => {
                ok = false;
                eprintln!("FAIL {}: manifest has no audit block", m.file_name());
            }
        }
    }
    let (base, vcfr) = (&cells[0], &cells[1]);
    if vcfr.faults.coverage() <= base.faults.coverage() {
        eprintln!(
            "FAIL: vcfr coverage {:.3} does not beat baseline {:.3}",
            vcfr.faults.coverage(),
            base.faults.coverage()
        );
        ok = false;
    }
    println!("faults-smoke: {}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// CI gate: recompute the headline numbers and fail (exit 1) when any
/// leaves its calibrated band.
fn check(threads: usize) -> bool {
    let (m, timing) = ex::run_matrix_timed(threads);
    write_artifacts(&m, &timing);
    let mut ok = true;
    let mut gate = |name: &str, value: f64, lo: f64, hi: f64| {
        let pass = (lo..=hi).contains(&value);
        println!(
            "{} {:<28} {:>8.3}  (band {:.3}..{:.3})",
            if pass { "PASS" } else { "FAIL" },
            name,
            value,
            lo,
            hi
        );
        ok &= pass;
    };
    gate("fig4 naive norm IPC mean", ex::mean(ex::fig4(&m).iter().map(|r| r.1)), 0.50, 0.75);
    gate("fig12 vcfr speedup geomean", ex::geomean(ex::fig12(&m).iter().map(|r| r.1)), 1.4, 2.6);
    gate("fig13 vcfr@64 norm IPC mean", ex::mean(ex::fig13(&m).iter().map(|r| r.3)), 0.94, 1.0);
    gate(
        "fig14 drc512 miss mean (%)",
        ex::mean(ex::fig14(&m).iter().map(|r| r.1)),
        0.0,
        10.0,
    );
    gate("fig15 drc power mean (%)", ex::mean(ex::fig15(&m).iter().map(|r| r.1)), 0.0, 1.0);
    let f11 = ex::fig11();
    gate("fig11 removal mean (%)", ex::mean(f11.iter().map(|r| r.removal_pct)), 97.0, 100.0);
    gate(
        "fig11 payloads after (total)",
        f11.iter().map(|r| r.payloads_after as f64).sum(),
        0.0,
        0.0,
    );
    ok
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = parse_threads(&mut args);
    let scale = parse_scale(&mut args);
    let shard = parse_shard(&mut args);
    if args.iter().any(|a| a == "check") {
        if scale != 1 {
            eprintln!("note: check gates on the calibrated scale-1 suite; --scale ignored");
        }
        let ok = check(threads);
        std::process::exit(if ok { 0 } else { 1 });
    }
    if args.iter().any(|a| a == "obs-smoke") {
        std::process::exit(if obs_smoke() { 0 } else { 1 });
    }
    if args.iter().any(|a| a == "faults-smoke") {
        std::process::exit(if faults_smoke() { 0 } else { 1 });
    }
    if args.iter().any(|a| a == "frontier-smoke") {
        std::process::exit(if frontier_smoke() { 0 } else { 1 });
    }
    if args.iter().any(|a| a == "telemetry-smoke") {
        std::process::exit(if telemetry_smoke() { 0 } else { 1 });
    }
    if args.iter().any(|a| a == "multicore-smoke") {
        std::process::exit(if multicore_smoke() { 0 } else { 1 });
    }
    if args.iter().any(|a| a == "throughput") {
        let (on, _) = throughput();
        std::process::exit(if on.insts_per_s > 0.0 { 0 } else { 1 });
    }
    if want(&args, "faults") {
        run_faults(&vcfr_workloads::spec_suite(), threads, Path::new("results/faults"));
    }
    if want(&args, "frontier") {
        run_frontier_cmd(threads, shard, Path::new("results/frontier"));
    }
    let needs_matrix =
        ["fig3", "fig4", "fig12", "fig13", "fig14", "fig15"].iter().any(|e| want(&args, e));
    let matrix: Option<Matrix> = needs_matrix.then(|| {
        eprintln!(
            "running the 11-app x 5-config simulation matrix on {threads} thread(s){} ...",
            if scale != 1 { format!(" at scale {scale}") } else { String::new() }
        );
        // Live per-cell progress lines (stderr, wall-clock only — the
        // observer cannot perturb the simulated results).
        let suite = vcfr_workloads::spec_suite_scaled(scale);
        let total = suite.len() * ex::MODE_NAMES.len();
        let done = std::sync::atomic::AtomicUsize::new(0);
        let (m, timing) = ex::matrix_over_observed(&suite, threads, &|r| {
            let n = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            eprintln!(
                "  [{n:>3}/{total}] {:<10} {:<8} {:>11} insts in {:>6.2}s ({:>6.1}M insts/s)",
                r.app,
                r.mode,
                r.instructions,
                r.wall_s,
                r.insts_per_s / 1e6
            );
        });
        write_artifacts(&m, &timing);
        m
    });

    if want(&args, "fig2") {
        header("Figure 2 - instruction-level emulation slowdown", "hundreds of times vs native");
        println!("{:<12} {:>14} {:>12}", "app", "emulated CPI", "slowdown");
        let rows = ex::fig2();
        for r in &rows {
            println!("{:<12} {:>14.1} {:>11.0}x", r.name, r.emulated_cpi, r.slowdown);
        }
        println!(
            "{:<12} {:>14} {:>11.0}x",
            "mean",
            "",
            ex::mean(rows.iter().map(|r| r.slowdown))
        );
    }

    if let Some(m) = matrix.as_ref() {
        if want(&args, "fig3") {
            header(
                "Figure 3 - naive hardware ILR cache impact",
                "IL1 miss ratio avg 9.4x; prefetch useless +28%; L2 pressure +36%",
            );
            println!(
                "{:<12} {:>10} {:>10} {:>12} {:>20} {:>16}",
                "app", "base IL1%", "naive IL1%", "miss ratio", "prefetch useless +pp",
                "L2 pressure +%"
            );
            let rows = ex::fig3(m);
            for r in &rows {
                println!(
                    "{:<12} {:>10.3} {:>10.2} {:>11.0}x {:>20.1} {:>16.1}",
                    r.name, r.base_il1_pct, r.naive_il1_pct, r.il1_miss_ratio,
                    r.prefetch_useless_delta_pct, r.l2_pressure_increase_pct
                );
            }
            println!(
                "{:<12} {:>10.3} {:>10.2} {:>11.0}x {:>20.1} {:>16.1}",
                "mean",
                ex::mean(rows.iter().map(|r| r.base_il1_pct)),
                ex::mean(rows.iter().map(|r| r.naive_il1_pct)),
                ex::geomean(rows.iter().map(|r| r.il1_miss_ratio)),
                ex::mean(rows.iter().map(|r| r.prefetch_useless_delta_pct)),
                ex::mean(rows.iter().map(|r| r.l2_pressure_increase_pct)),
            );
        }

        if want(&args, "fig4") {
            header("Figure 4 - naive hardware ILR normalized IPC", "mean ~= 0.61-0.66");
            println!("{:<12} {:>16}", "app", "normalized IPC");
            let rows = ex::fig4(m);
            for (n, v) in &rows {
                println!("{n:<12} {v:>16.3}");
            }
            println!("{:<12} {:>16.3}", "mean", ex::mean(rows.iter().map(|r| r.1)));
        }
    }

    if want(&args, "table1") {
        header("Table I - qualitative comparison", "as printed");
        print!("{}", ex::table1());
    }

    if want(&args, "table2") {
        header(
            "Table II - static control-flow statistics",
            "direct >> indirect; xalan has the most indirect calls",
        );
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>12}",
            "app", "direct", "indirect", "calls", "ind. calls"
        );
        for (n, s) in ex::table2() {
            println!(
                "{:<12} {:>10} {:>10} {:>10} {:>12}",
                n, s.direct_transfers, s.indirect_transfers, s.function_calls,
                s.indirect_function_calls
            );
        }
    }

    if want(&args, "fig9") {
        header("Figure 9 - functions with/without ret", "both populations present");
        println!("{:<12} {:>10} {:>12}", "app", "with ret", "without ret");
        for (n, w, wo) in ex::fig9() {
            println!("{n:<12} {w:>10} {wo:>12}");
        }
    }

    if want(&args, "fig11") {
        header(
            "Figure 11 / SecV-B - gadget removal and payload assembly",
            "~98% gadgets removed; payloads before: all, after: none",
        );
        println!(
            "{:<12} {:>10} {:>10} {:>16} {:>15}",
            "app", "gadgets", "removed%", "payloads before", "payloads after"
        );
        let rows = ex::fig11();
        for r in &rows {
            println!(
                "{:<12} {:>10} {:>9.1}% {:>16} {:>15}",
                r.name, r.total_gadgets, r.removal_pct, r.payloads_before, r.payloads_after
            );
        }
        println!(
            "{:<12} {:>10} {:>9.1}%",
            "mean",
            "",
            ex::mean(rows.iter().map(|r| r.removal_pct))
        );
    }

    if want(&args, "ablations") {
        header(
            "Ablations - DRC design space, context switches, page confinement",
            "extensions beyond the paper (DESIGN.md SS6)",
        );
        println!("{:<42} {:>10} {:>10} {:>24}", "setting", "norm IPC", "DRC miss", "note");
        for r in ex::ablations() {
            println!(
                "{:<42} {:>10.3} {:>9.1}% {:>24}",
                r.setting, r.normalized_ipc, r.drc_miss_pct, r.note
            );
        }

        header(
            "SecIV-A option 1 - software return-address randomization",
            "call -> push+jmp expansion 'expands size of the original program'",
        );
        println!("{:<12} {:>15} {:>12} {:>10}", "app", "calls expanded", "extra bytes", "growth");
        for (n, calls, bytes, pct) in ex::call_expansion() {
            println!("{n:<12} {calls:>15} {bytes:>12} {pct:>9.2}%");
        }

        header(
            "SecV-C entropy - bits of placement uncertainty per instruction",
            "large randomization space at instruction granularity",
        );
        for (n, bits) in ex::entropy() {
            println!("{n:<12} {bits:>6.1} bits");
        }
    }

    if want(&args, "variance") {
        header(
            "Layout sensitivity - 5 random layouts per app",
            "conclusions should not depend on the particular layout drawn",
        );
        println!(
            "{:<12} {:>12} {:>10} {:>12} {:>10}",
            "app", "naive mean", "spread", "VCFR mean", "spread"
        );
        for (n, nm, ns, vm, vs) in
            ex::seed_variance(&["bzip2", "hmmer", "h264ref", "lbm"], &[1, 2, 3, 4, 5])
        {
            println!("{n:<12} {nm:>12.3} {ns:>10.3} {vm:>12.3} {vs:>10.3}");
        }
    }

    if want(&args, "multicore") {
        header(
            "SecIV-D demo - two cores, shared L2 (hmmer + h264ref)",
            "randomization applies to multi-core 'with ease' (read-only text)",
        );
        println!(
            "{:<16} {:>16} {:>16} {:>14}",
            "pairing", "core0 norm IPC", "core1 norm IPC", "L2 miss rate"
        );
        for (p, a, b, l2) in ex::multicore_demo() {
            println!("{p:<16} {a:>16.3} {b:>16.3} {l2:>13.1}%");
        }

        header(
            "Multicore rerand cells - VCFR core + baseline sibling",
            "live re-randomization on one core while the other streams the shared L2",
        );
        println!(
            "{:<18} {:>12} {:>14} {:>18} {:>14}",
            "pairing", "epoch swaps", "core0 IPC", "contention cycles", "L2 miss rate"
        );
        let cells = ex::multicore_rerand_cells(threads, 300_000);
        for c in &cells {
            println!(
                "{:<18} {:>12} {:>14.3} {:>18} {:>13.1}%",
                format!("{}+{}", c.vcfr_app, c.base_app),
                c.output.per_core[0].rerand_epochs,
                c.output.per_core[0].ipc(),
                c.output.stats.contention_stall_cycles,
                100.0 * c.output.shared_l2.miss_rate()
            );
        }
        let ms = manifests::build_multicore_manifests(&cells, threads);
        match manifests::write_manifests(Path::new("results/manifests"), &ms) {
            Ok(n) => eprintln!("wrote {n} multicore manifests to results/manifests/"),
            Err(e) => eprintln!("warning: could not write multicore manifests: {e}"),
        }
    }

    if want(&args, "ooo") {
        header(
            "SecIX preview - 4-wide out-of-order core",
            "future work: 'extend the idea to the out-of-order superscalar processor'",
        );
        println!(
            "{:<12} {:>10} {:>16} {:>16}",
            "app", "base IPC", "naive norm IPC", "VCFR norm IPC"
        );
        let rows = ex::ooo_preview();
        for (n, b, nv, vc) in &rows {
            println!("{n:<12} {b:>10.3} {nv:>16.3} {vc:>16.3}");
        }
        println!(
            "{:<12} {:>10.3} {:>16.3} {:>16.3}",
            "mean",
            ex::mean(rows.iter().map(|r| r.1)),
            ex::mean(rows.iter().map(|r| r.2)),
            ex::mean(rows.iter().map(|r| r.3)),
        );
    }

    if let Some(m) = matrix.as_ref() {
        if want(&args, "fig12") {
            header("Figure 12 - VCFR speedup over naive hardware ILR", "mean 1.63x");
            println!("{:<12} {:>10}", "app", "speedup");
            let rows = ex::fig12(m);
            for (n, v) in &rows {
                println!("{n:<12} {v:>9.2}x");
            }
            println!("{:<12} {:>9.2}x", "mean", ex::geomean(rows.iter().map(|r| r.1)));
        }

        if want(&args, "fig13") {
            header(
                "Figure 13 - normalized IPC vs DRC size",
                "512: ~98.9%; 64: ~97.9% of baseline",
            );
            println!("{:<12} {:>10} {:>10} {:>10}", "app", "DRC 512", "DRC 128", "DRC 64");
            let rows = ex::fig13(m);
            for (n, a, b, c) in &rows {
                println!("{n:<12} {a:>10.3} {b:>10.3} {c:>10.3}");
            }
            println!(
                "{:<12} {:>10.3} {:>10.3} {:>10.3}",
                "mean",
                ex::mean(rows.iter().map(|r| r.1)),
                ex::mean(rows.iter().map(|r| r.2)),
                ex::mean(rows.iter().map(|r| r.3)),
            );
        }

        if want(&args, "fig14") {
            header("Figure 14 - DRC miss rates", "512 entries: 4.5% avg; 64 entries: 20.6% avg");
            println!("{:<12} {:>10} {:>10}", "app", "DRC 512", "DRC 64");
            let rows = ex::fig14(m);
            for (n, a, b) in &rows {
                println!("{n:<12} {a:>9.1}% {b:>9.1}%");
            }
            println!(
                "{:<12} {:>9.1}% {:>9.1}%",
                "mean",
                ex::mean(rows.iter().map(|r| r.1)),
                ex::mean(rows.iter().map(|r| r.2)),
            );
        }

        if want(&args, "fig15") {
            header("Figure 15 - DRC dynamic power overhead", "0.18% of CPU dynamic power avg");
            println!("{:<12} {:>12}", "app", "overhead");
            let rows = ex::fig15(m);
            for (n, v) in &rows {
                println!("{n:<12} {v:>11.3}%");
            }
            println!("{:<12} {:>11.3}%", "mean", ex::mean(rows.iter().map(|r| r.1)));
        }
    }
}
