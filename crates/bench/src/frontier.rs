//! The entropy/security frontier: sweep the randomization parameter
//! space and measure, at each point, what the defender pays (slowdown
//! over the baseline machine), what the defender gains (fault-detection
//! coverage), and what the attacker keeps (empirical success probability
//! from the coverage-guided gadget-chain fuzzer).
//!
//! Every cell is a pure function of (workload, seed, parameter point),
//! so the campaign shards: `repro frontier --shard i/n` runs a point
//! subset, the per-node manifest trees merge byte-for-byte through
//! [`merge_manifest_trees`](crate::merge_manifest_trees), and
//! `vcfr report --frontier` renders the Pareto table from any merged
//! tree.

use crate::campaign::fault_plan_for;
use crate::experiments::{parallel_map, SEED};
use std::fmt::Write as _;
use vcfr_core::{DrcConfig, RandParams};
use vcfr_gadget::{fuzz_trial, seed_corpus, AttackSurface, FuzzConfig, TrialReport};
use vcfr_rewriter::{randomize, RandomizeConfig};
use vcfr_sim::{FaultStats, Mode, Session, SimConfig, SimStats};
use vcfr_workloads::Workload;

/// One point of the frontier sweep: the security-relevant randomization
/// geometry ([`RandParams`] is derived from it via [`FrontierPoint::params`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrontierPoint {
    /// log2 floor of the randomization-region span.
    pub entropy_bits: u32,
    /// Region span as a multiple of the text size.
    pub sparsity: u32,
}

impl FrontierPoint {
    /// The full parameter set at this point (default DRC geometry, no
    /// re-randomization — the sweep isolates layout entropy).
    pub fn params(&self) -> RandParams {
        RandParams {
            entropy_bits: self.entropy_bits,
            sparsity: self.sparsity,
            rerand_epoch: None,
            drc: DrcConfig::direct_mapped(128),
        }
    }

    /// The manifest mode name of this point (`frontier-e<bits>`).
    pub fn label(&self) -> String {
        format!("frontier-e{:02}", self.entropy_bits)
    }
}

/// The standard sweep: five entropy points at sparsity 2, spanning
/// 8 KiB to 16 MiB regions. Sparsity is held low so the span — and with
/// it the attacker's search space — is set by `entropy_bits` alone on
/// the compact workload binaries.
pub const FRONTIER_POINTS: [FrontierPoint; 5] = [
    FrontierPoint { entropy_bits: 13, sparsity: 2 },
    FrontierPoint { entropy_bits: 15, sparsity: 2 },
    FrontierPoint { entropy_bits: 17, sparsity: 2 },
    FrontierPoint { entropy_bits: 20, sparsity: 2 },
    FrontierPoint { entropy_bits: 24, sparsity: 2 },
];

/// The attacker budget of the full frontier campaign.
pub fn frontier_fuzz_config() -> FuzzConfig {
    FuzzConfig { seed: SEED, trials: 32, probes_per_trial: 256, exec_budget: 4096 }
}

/// Everything measured at one frontier point.
#[derive(Clone, Debug)]
pub struct FrontierRow {
    /// Application the point was measured on.
    pub app: &'static str,
    /// The parameter point.
    pub point: FrontierPoint,
    /// Randomization-region span the point produces for this app.
    pub span_bytes: u64,
    /// Fuzzing trials mounted.
    pub trials: u32,
    /// Trials that spawned a shell.
    pub successes: u32,
    /// Empirical attacker success probability (successes / trials).
    pub attack_success: f64,
    /// Mapped pages the fuzzer's coverage feedback leaked, summed over
    /// trials.
    pub pages_leaked: usize,
    /// VCFR cycles / baseline cycles at this point.
    pub slowdown: f64,
    /// Baseline cycles (denominator of the slowdown).
    pub base_cycles: u64,
    /// Fault-detection coverage of the faulted VCFR run.
    pub fault_coverage: f64,
    /// Aggregate fault counters of the faulted run.
    pub faults: FaultStats,
    /// Full statistics of the (unfaulted) VCFR run at this point.
    pub stats: SimStats,
}

/// The headline numbers of one frontier point — what the Pareto table
/// renders. `vcfr report --frontier` rebuilds these from manifests, so
/// the table never needs the full simulator statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontierSummary {
    /// Application name.
    pub app: String,
    /// log2 floor of the randomization-region span.
    pub entropy_bits: u32,
    /// Randomization-region span in bytes.
    pub span_bytes: u64,
    /// Fuzzing trials that spawned a shell.
    pub successes: u32,
    /// Fuzzing trials mounted.
    pub trials: u32,
    /// Empirical attacker success probability.
    pub attack_success: f64,
    /// Mapped pages leaked to the fuzzer, summed over trials.
    pub pages_leaked: u64,
    /// VCFR cycles / baseline cycles.
    pub slowdown: f64,
    /// Fault-detection coverage of the faulted run.
    pub fault_coverage: f64,
}

impl FrontierRow {
    /// This row's headline numbers.
    pub fn summary(&self) -> FrontierSummary {
        FrontierSummary {
            app: self.app.to_string(),
            entropy_bits: self.point.entropy_bits,
            span_bytes: self.span_bytes,
            successes: self.successes,
            trials: self.trials,
            attack_success: self.attack_success,
            pages_leaked: self.pages_leaked as u64,
            slowdown: self.slowdown,
            fault_coverage: self.fault_coverage,
        }
    }
}

/// Splits `points` into `shards` round-robin chunks (shard `i` takes
/// points `i`, `i + shards`, …). Every shard list is non-overlapping and
/// their union is `points`; each node runs its shard and the manifest
/// trees merge conflict-free.
pub fn shard_frontier(points: &[FrontierPoint], shards: usize) -> Vec<Vec<FrontierPoint>> {
    let shards = shards.max(1);
    let mut out = vec![Vec::new(); shards];
    for (i, p) in points.iter().enumerate() {
        out[i % shards].push(*p);
    }
    out
}

/// Runs the frontier campaign for `w` over `points` on `threads`
/// workers: one baseline run, then per point a VCFR run (slowdown), a
/// faulted VCFR run (detection coverage), and `fz.trials` fuzzing trials
/// (attacker success). Row order follows `points` and every number is
/// independent of `threads`.
///
/// # Panics
///
/// Panics when a point cannot hold the program (its span is too small
/// for the scattered layout) or a simulator run fails — the standard
/// points are sized for the compact workload suite.
pub fn run_frontier(w: &Workload, points: &[FrontierPoint], fz: &FuzzConfig, threads: usize) -> Vec<FrontierRow> {
    // Attacker half: one (point, trial) grid, sharded flat so slow
    // trials of one point overlap with another point's.
    let surface = AttackSurface::scan(&w.image);
    let seeds = seed_corpus(&surface);
    let grid: Vec<(usize, u32)> =
        (0..points.len()).flat_map(|p| (0..fz.trials).map(move |t| (p, t))).collect();
    let trials: Vec<TrialReport> = parallel_map(grid, threads, |_, (p, t)| {
        fuzz_trial(&surface, &seeds, &points[p].params(), fz, t)
    });

    // Defender half: per point, a clean VCFR run and a faulted one.
    let base_cfg = SimConfig::default();
    let base = Session::new(Mode::Baseline(&w.image), &base_cfg, w.max_insts)
        .and_then(|mut s| s.run())
        .expect("baseline runs")
        .output
        .stats;
    let sims: Vec<(SimStats, FaultStats)> = parallel_map(points.to_vec(), threads, |_, p| {
        let params = p.params();
        let rp = randomize(&w.image, &RandomizeConfig::from_params(SEED, &params))
            .unwrap_or_else(|e| panic!("point {} cannot hold {}: {e}", p.label(), w.name));
        let cfg = SimConfig::builder().rand_params(Some(params)).build().expect("valid point");
        let mode = || Mode::Vcfr { program: &rp, drc: params.drc };
        let clean = Session::new(mode(), &cfg, w.max_insts)
            .and_then(|mut s| s.run())
            .expect("frontier run")
            .output
            .stats;
        let plan = fault_plan_for(w.name, w.max_insts);
        let faulted = Session::new(mode(), &cfg, w.max_insts)
            .map(|s| s.with_faults(&plan))
            .and_then(|mut s| s.run())
            .expect("faulted frontier run")
            .faults;
        (clean, faulted)
    });

    points
        .iter()
        .zip(sims)
        .enumerate()
        .map(|(pi, (point, (stats, faults)))| {
            let mine: Vec<&TrialReport> = trials
                .iter()
                .enumerate()
                .filter(|(gi, _)| gi / fz.trials as usize == pi)
                .map(|(_, t)| t)
                .collect();
            let successes = mine.iter().filter(|t| t.succeeded).count() as u32;
            FrontierRow {
                app: w.name,
                point: *point,
                span_bytes: u64::from(
                    point.params().span_bytes(w.image.text().bytes.len()),
                ),
                trials: fz.trials,
                successes,
                attack_success: if fz.trials == 0 {
                    0.0
                } else {
                    f64::from(successes) / f64::from(fz.trials)
                },
                pages_leaked: mine.iter().map(|t| t.pages_discovered).sum(),
                slowdown: stats.cycles as f64 / base.cycles.max(1) as f64,
                base_cycles: base.cycles,
                fault_coverage: faults.coverage(),
                faults,
                stats,
            }
        })
        .collect()
}

/// Whether `a` dominates `b` on the frontier's three objectives: no
/// worse on attacker success (lower), slowdown (lower), and
/// fault-detection coverage (higher), strictly better on at least one.
fn dominates(a: &FrontierSummary, b: &FrontierSummary) -> bool {
    let no_worse = a.attack_success <= b.attack_success
        && a.slowdown <= b.slowdown
        && a.fault_coverage >= b.fault_coverage;
    let better = a.attack_success < b.attack_success
        || a.slowdown < b.slowdown
        || a.fault_coverage > b.fault_coverage;
    no_worse && better
}

/// Renders the sweep as the Pareto table: one line per point, `*`
/// marking the Pareto-optimal (non-dominated) set over (attacker
/// success ↓, slowdown ↓, fault coverage ↑).
pub fn frontier_pareto_table(rows: &[FrontierSummary]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<24} {:>7} {:>9} {:>11} {:>7} {:>9} {:>12}  {}",
        "point", "entropy", "span", "atk-success", "pages", "slowdown", "fault-cover", "pareto"
    );
    for r in rows {
        let pareto = !rows.iter().any(|other| dominates(other, r));
        let _ = writeln!(
            s,
            "{:<24} {:>7} {:>9} {:>5}/{:<5} {:>7} {:>8.3}x {:>11.1}%  {}",
            format!("{}-frontier-e{:02}", r.app, r.entropy_bits),
            r.entropy_bits,
            format_span(r.span_bytes),
            r.successes,
            r.trials,
            r.pages_leaked,
            r.slowdown,
            100.0 * r.fault_coverage,
            if pareto { "*" } else { "" },
        );
    }
    s
}

fn format_span(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{} MiB", bytes >> 20)
    } else {
        format!("{} KiB", bytes >> 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcfr_workloads::by_name;

    fn tiny_points() -> Vec<FrontierPoint> {
        vec![
            FrontierPoint { entropy_bits: 13, sparsity: 2 },
            FrontierPoint { entropy_bits: 17, sparsity: 2 },
        ]
    }

    fn tiny_fuzz() -> FuzzConfig {
        FuzzConfig { seed: SEED, trials: 2, probes_per_trial: 8, exec_budget: 1024 }
    }

    fn tiny_workload() -> Workload {
        let mut w = by_name("sjeng").expect("sjeng exists");
        w.max_insts = w.max_insts.min(30_000);
        w
    }

    #[test]
    fn frontier_is_deterministic_across_thread_counts() {
        let w = tiny_workload();
        let (points, fz) = (tiny_points(), tiny_fuzz());
        let a = run_frontier(&w, &points, &fz, 1);
        let b = run_frontier(&w, &points, &fz, 3);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.point, y.point);
            assert_eq!(x.successes, y.successes);
            assert_eq!(x.pages_leaked, y.pages_leaked);
            assert_eq!(x.stats.cycles, y.stats.cycles);
            assert_eq!(x.faults, y.faults);
            assert_eq!(x.base_cycles, y.base_cycles);
        }
    }

    #[test]
    fn span_grows_with_entropy_and_slowdown_stays_positive() {
        let w = tiny_workload();
        let rows = run_frontier(&w, &tiny_points(), &tiny_fuzz(), 2);
        assert!(rows[0].span_bytes < rows[1].span_bytes);
        assert!(rows.iter().all(|r| r.slowdown > 0.0));
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.attack_success)));
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.fault_coverage)));
    }

    #[test]
    fn shards_partition_the_points() {
        let shards = shard_frontier(&FRONTIER_POINTS, 2);
        assert_eq!(shards.len(), 2);
        let mut all: Vec<FrontierPoint> = shards.concat();
        all.sort_by_key(|p| p.entropy_bits);
        assert_eq!(all, FRONTIER_POINTS.to_vec());
        assert_eq!(shard_frontier(&FRONTIER_POINTS, 1)[0], FRONTIER_POINTS.to_vec());
    }

    #[test]
    fn pareto_marks_non_dominated_points() {
        let summary = |bits: u32, atk: f64, slow: f64, cover: f64| FrontierSummary {
            app: "sjeng".into(),
            entropy_bits: bits,
            span_bytes: 1 << bits,
            successes: (atk * 32.0) as u32,
            trials: 32,
            attack_success: atk,
            pages_leaked: 10,
            slowdown: slow,
            fault_coverage: cover,
        };
        // Point 1 dominates point 0; point 2 trades slowdown for security.
        let rows = vec![
            summary(13, 0.5, 2.0, 0.5),
            summary(15, 0.1, 1.5, 0.9),
            summary(24, 0.0, 1.8, 0.9),
        ];
        let table = frontier_pareto_table(&rows);
        let lines: Vec<&str> = table.lines().collect();
        assert!(!lines[1].trim_end().ends_with('*'), "dominated point marked: {table}");
        assert!(lines[2].trim_end().ends_with('*'), "frontier point unmarked: {table}");
        assert!(lines[3].trim_end().ends_with('*'), "tradeoff point unmarked: {table}");
    }
}
