//! Sanity tests of the experiment harness itself, on reduced budgets.

use crate::experiments as ex;

#[test]
fn small_matrix_supports_all_figure_functions() {
    let m = ex::run_small_matrix(&["hmmer", "lbm"], 120_000);
    assert_eq!(m.len(), 2);

    let f3 = ex::fig3(&m);
    assert!(f3.iter().all(|r| r.il1_miss_ratio >= 1.0), "naive must not improve IL1");

    let f4 = ex::fig4(&m);
    assert!(f4.iter().all(|(_, v)| *v > 0.0 && *v <= 1.05));

    let f12 = ex::fig12(&m);
    assert!(f12.iter().all(|(_, v)| *v >= 0.95), "vcfr must not lose to naive");

    for (_, a, b, c) in ex::fig13(&m) {
        assert!(a >= c - 1e-9, "512-entry DRC must beat 64-entry: {a} vs {c}");
        assert!(b > 0.5 && b <= 1.05);
    }

    for (_, m512, m64) in ex::fig14(&m) {
        assert!(m512 <= m64 + 1e-9);
        assert!((0.0..=100.0).contains(&m512));
    }

    for (_, pct) in ex::fig15(&m) {
        assert!((0.0..2.0).contains(&pct), "power overhead {pct}%");
    }
}

#[test]
fn table1_is_the_papers_matrix() {
    let t = ex::table1();
    for needle in ["No Randomization", "VCFR", "preserved", "destroyed", "diversified"] {
        assert!(t.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn table2_and_fig9_cover_all_eleven_apps() {
    let t2 = ex::table2();
    assert_eq!(t2.len(), 11);
    for (name, s) in &t2 {
        assert!(s.direct_transfers > 0, "{name}");
        assert!(s.funcs_with_ret > 0, "{name}");
    }
    assert_eq!(ex::fig9().len(), 11);
}

#[test]
fn means_behave() {
    assert!((ex::geomean([2.0, 8.0]) - 4.0).abs() < 1e-9);
    assert!((ex::mean([1.0, 3.0]) - 2.0).abs() < 1e-9);
    assert_eq!(ex::geomean(std::iter::empty()), 0.0);
    assert_eq!(ex::mean(std::iter::empty()), 0.0);
}

#[test]
fn fig2_rows_are_triple_digit_slowdowns() {
    // Only the two cheapest Fig 2 apps, to keep the test fast.
    let rows = ex::fig2();
    assert_eq!(rows.len(), 6);
    for r in rows {
        assert!(r.slowdown > 20.0, "{}: {}", r.name, r.slowdown);
        assert!(r.emulated_cpi > 50.0);
    }
}

#[test]
fn manifests_are_canonical_across_thread_counts() {
    // One cheap app through the full five-column matrix at two worker
    // counts: the manifests must agree byte-for-byte once the volatile
    // host block is stripped, and must survive a parse round trip.
    let mut w = vcfr_workloads::by_name("bzip2").expect("known workload");
    w.max_insts = w.max_insts.min(60_000);
    let suite = [w];
    let (m1, t1) = ex::matrix_over(&suite, 1);
    let (m2, t2) = ex::matrix_over(&suite, 2);
    let a = crate::build_matrix_manifests(&m1, &t1);
    let b = crate::build_matrix_manifests(&m2, &t2);
    assert_eq!(a.len(), ex::MODE_NAMES.len());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.file_name(), y.file_name());
        assert_eq!(x.canonical_bytes(), y.canonical_bytes(), "{}", x.file_name());
        let back = vcfr_obs::Manifest::from_str(&x.to_string_pretty()).unwrap();
        assert_eq!(back.canonical_bytes(), x.canonical_bytes());
        // Every matrix manifest carries samples and a passing audit.
        assert!(!back.json().get("samples").unwrap().as_arr().unwrap().is_empty());
        assert!(matches!(
            back.json().get_path("audit.passed"),
            Some(vcfr_obs::Json::Bool(true))
        ));
    }
}
