//! Sharding an evaluation campaign into per-job cells, and merging the
//! per-node manifest trees back into one canonical `results/` tree.
//!
//! The fleet coordinator (`vcfr fleet`, `crates/service`) schedules
//! work in units of [`ShardCell`]: one (application, configuration)
//! cell of the experiment matrix or the fault campaign. Cell order is a
//! pure function of the requested apps and modes (app-major, modes in
//! the given order), so every client that shards the same campaign
//! produces the same chunk list — which is what makes the merged output
//! comparable byte-for-byte against a single-daemon run.
//!
//! Merging is idempotent and order-independent: a manifest file is the
//! canonical (host-stripped) byte form keyed by `<app>__<mode>.json`,
//! so two nodes that produced the same cell must agree byte-for-byte.
//! Byte-equal duplicates collapse silently; anything else is a
//! [`MergeOutcome::Conflict`], never an overwrite.

use crate::campaign::CAMPAIGN_MODES;
use std::io;
use std::path::Path;
use vcfr_workloads::by_name_scaled;

/// One schedulable cell of a sharded campaign, in the experiment-matrix
/// vocabulary (`base` / `naive` / `vcfr<entries>`; see
/// `vcfr_bench::MODE_NAMES`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardCell {
    /// Application (workload) name.
    pub app: String,
    /// Matrix mode column.
    pub mode: String,
    /// Whether this cell runs the app's deterministic fault schedule
    /// (a fault-campaign cell, manifest mode `faults-<mode>`).
    pub faults: bool,
    /// Instruction budget of the run.
    pub max_insts: u64,
    /// Workload scale factor.
    pub scale: u64,
    /// Instructions between engine snapshots when a daemon runs it.
    pub checkpoint_every: u64,
}

/// The manifest file name this cell produces (`<app>__<mode>.json`,
/// with the `faults-` mode prefix for campaign cells).
impl ShardCell {
    /// See [`ShardCell`] — the merge key of this cell's output.
    pub fn manifest_file_name(&self) -> String {
        if self.faults {
            format!("{}__faults-{}.json", self.app, self.mode)
        } else {
            format!("{}__{}.json", self.app, self.mode)
        }
    }
}

/// Resolves one cell, validating the app name and defaulting the budget
/// to the scaled workload's own.
fn cell(
    app: &str,
    mode: &str,
    faults: bool,
    max_insts: Option<u64>,
    scale: u64,
    checkpoint_every: u64,
) -> Result<ShardCell, String> {
    let w = by_name_scaled(app, scale).ok_or_else(|| format!("unknown workload {app:?}"))?;
    Ok(ShardCell {
        app: app.to_string(),
        mode: mode.to_string(),
        faults,
        max_insts: max_insts.unwrap_or(w.max_insts),
        scale,
        checkpoint_every,
    })
}

/// Shards an experiment matrix over `apps` × `modes` into cells,
/// app-major (all of one app's modes, then the next app). `max_insts`
/// of `None` uses each scaled workload's own budget.
///
/// # Errors
///
/// A message naming the first unknown workload.
pub fn shard_matrix(
    apps: &[&str],
    modes: &[&str],
    max_insts: Option<u64>,
    scale: u64,
    checkpoint_every: u64,
) -> Result<Vec<ShardCell>, String> {
    let mut out = Vec::with_capacity(apps.len() * modes.len());
    for app in apps {
        for mode in modes {
            out.push(cell(app, mode, false, max_insts, scale, checkpoint_every)?);
        }
    }
    Ok(out)
}

/// Shards the Figure-11 fault campaign over `apps` ×
/// [`CAMPAIGN_MODES`] into faulted cells, app-major.
///
/// # Errors
///
/// A message naming the first unknown workload.
pub fn shard_campaign(
    apps: &[&str],
    max_insts: Option<u64>,
    checkpoint_every: u64,
) -> Result<Vec<ShardCell>, String> {
    let mut out = Vec::with_capacity(apps.len() * CAMPAIGN_MODES.len());
    for app in apps {
        for mode in CAMPAIGN_MODES {
            out.push(cell(app, mode, true, max_insts, 1, checkpoint_every)?);
        }
    }
    Ok(out)
}

/// What merging one manifest into the canonical tree did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeOutcome {
    /// The file was absent and has been written (atomically).
    Written,
    /// The file already held exactly these bytes; nothing was touched.
    Identical,
    /// The file exists with *different* bytes — two runs claiming the
    /// same identity disagreed. The tree is left untouched.
    Conflict,
}

/// Merges one canonical manifest into `dir` under `file_name`:
/// write-if-absent (atomic tmp + rename), byte-compare otherwise. Never
/// overwrites — see [`MergeOutcome`].
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn merge_manifest_bytes(
    dir: &Path,
    file_name: &str,
    bytes: &[u8],
) -> io::Result<MergeOutcome> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(file_name);
    match std::fs::read(&path) {
        Ok(existing) if existing == bytes => Ok(MergeOutcome::Identical),
        Ok(_) => Ok(MergeOutcome::Conflict),
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let tmp = dir.join(format!("{file_name}.tmp"));
            std::fs::write(&tmp, bytes)?;
            std::fs::rename(&tmp, &path)?;
            Ok(MergeOutcome::Written)
        }
        Err(e) => Err(e),
    }
}

/// Per-file tally of a tree merge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Files newly written into the destination.
    pub written: usize,
    /// Byte-equal duplicates collapsed.
    pub identical: usize,
    /// File names that conflicted (left untouched in the destination).
    pub conflicts: Vec<String>,
}

/// Merges every `*.json` manifest from each source directory into
/// `dest` via [`merge_manifest_bytes`]. Sources are processed in the
/// given order and files within each source in name order, but because
/// merging never overwrites, any order yields the same tree (only the
/// report's written/identical split can shift).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn merge_manifest_trees(dest: &Path, sources: &[&Path]) -> io::Result<MergeReport> {
    let mut report = MergeReport::default();
    for src in sources {
        let mut names: Vec<String> = std::fs::read_dir(src)?
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.ends_with(".json"))
            .collect();
        names.sort_unstable();
        for name in names {
            let bytes = std::fs::read(src.join(&name))?;
            match merge_manifest_bytes(dest, &name, &bytes)? {
                MergeOutcome::Written => report.written += 1,
                MergeOutcome::Identical => report.identical += 1,
                MergeOutcome::Conflict => report.conflicts.push(name),
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vcfr-shard-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn matrix_shards_app_major_in_mode_order() {
        let cells = shard_matrix(&["bzip2", "gcc"], &["base", "vcfr128"], Some(10_000), 1, 1_000)
            .expect("known apps");
        let keys: Vec<String> = cells.iter().map(ShardCell::manifest_file_name).collect();
        assert_eq!(
            keys,
            [
                "bzip2__base.json",
                "bzip2__vcfr128.json",
                "gcc__base.json",
                "gcc__vcfr128.json"
            ]
        );
        assert!(cells.iter().all(|c| !c.faults && c.max_insts == 10_000));
        assert!(shard_matrix(&["nope"], &["base"], None, 1, 1_000).is_err());
    }

    #[test]
    fn default_budget_is_the_scaled_workloads_own() {
        let one = shard_matrix(&["bzip2"], &["base"], None, 1, 1_000).expect("shards");
        let four = shard_matrix(&["bzip2"], &["base"], None, 4, 1_000).expect("shards");
        assert!(four[0].max_insts > one[0].max_insts);
    }

    #[test]
    fn campaign_shards_cover_both_machines() {
        let cells = shard_campaign(&["bzip2"], Some(20_000), 1_000).expect("known app");
        let keys: Vec<String> = cells.iter().map(ShardCell::manifest_file_name).collect();
        assert_eq!(keys, ["bzip2__faults-base.json", "bzip2__faults-vcfr128.json"]);
        assert!(cells.iter().all(|c| c.faults));
    }

    #[test]
    fn merge_is_write_once_and_conflict_safe() {
        let dir = temp_dir("merge");
        assert_eq!(
            merge_manifest_bytes(&dir, "a__base.json", b"one").expect("io"),
            MergeOutcome::Written
        );
        assert_eq!(
            merge_manifest_bytes(&dir, "a__base.json", b"one").expect("io"),
            MergeOutcome::Identical
        );
        assert_eq!(
            merge_manifest_bytes(&dir, "a__base.json", b"two").expect("io"),
            MergeOutcome::Conflict
        );
        assert_eq!(std::fs::read(dir.join("a__base.json")).expect("kept"), b"one");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tree_merge_collapses_duplicates_and_reports_conflicts() {
        let (a, b, dest) = (temp_dir("tree-a"), temp_dir("tree-b"), temp_dir("tree-dest"));
        std::fs::write(a.join("x__base.json"), b"x").expect("write");
        std::fs::write(a.join("y__base.json"), b"y").expect("write");
        std::fs::write(b.join("y__base.json"), b"y").expect("write");
        std::fs::write(b.join("z__base.json"), b"z!").expect("write");
        std::fs::write(dest.join("z__base.json"), b"z").expect("write");
        let report = merge_manifest_trees(&dest, &[&a, &b]).expect("io");
        assert_eq!(report.written, 2);
        assert_eq!(report.identical, 1);
        assert_eq!(report.conflicts, ["z__base.json"]);
        assert_eq!(std::fs::read(dest.join("z__base.json")).expect("kept"), b"z");
        for d in [a, b, dest] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }
}
