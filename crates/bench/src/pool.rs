//! Shared worker machinery: the scoped [`parallel_map`] fan-out the
//! experiment matrix uses, and the long-lived bounded [`WorkerPool`] the
//! batch-simulation service schedules jobs on.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Runs `f` over `items` on `threads` workers, returning the results in
/// item order. Items are handed out from a shared queue, so reassembly
/// is deterministic regardless of scheduling.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let queue = Mutex::new(items.into_iter().enumerate().collect::<Vec<_>>());
    let results = Mutex::new((0..n).map(|_| None).collect::<Vec<Option<R>>>());
    let workers = threads.clamp(1, n.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                // Pop from the front so execution order follows item
                // order (single-threaded runs are exactly serial).
                let job = {
                    let mut q = queue.lock().expect("queue lock");
                    if q.is_empty() {
                        None
                    } else {
                        Some(q.remove(0))
                    }
                };
                let Some((i, item)) = job else { break };
                let r = f(i, item);
                results.lock().expect("results lock")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

/// Returned by [`WorkerPool::try_submit`] when the bounded queue is at
/// capacity (or the pool is shutting down); carries the rejected job
/// back to the caller so nothing is silently dropped.
#[derive(Debug)]
pub struct PoolFull<J>(pub J);

/// Cumulative activity of one worker thread, published into the pool's
/// shared snapshot slot after every job.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStat {
    /// Jobs this worker has completed.
    pub jobs: u64,
    /// Wall-clock seconds this worker spent inside the handler.
    pub busy_secs: f64,
}

/// A point-in-time view of the pool for telemetry consumers (the
/// daemon's `metrics` endpoint, `vcfr top`). Reading one never blocks a
/// worker: the per-worker stats live in their own slot, apart from the
/// job-queue lock.
#[derive(Clone, Debug, Default)]
pub struct PoolSnapshot {
    /// Jobs waiting in the bounded queue.
    pub queue_depth: usize,
    /// Jobs a worker is currently running.
    pub in_flight: usize,
    /// Queue capacity (the backpressure bound).
    pub capacity: usize,
    /// Seconds since the pool was created.
    pub uptime_secs: f64,
    /// One entry per worker thread, in spawn order.
    pub workers: Vec<WorkerStat>,
}

impl PoolSnapshot {
    /// Fraction of the pool's lifetime worker `i` spent busy (0 when
    /// the pool is brand new).
    pub fn utilization(&self, i: usize) -> f64 {
        if self.uptime_secs <= 0.0 {
            0.0
        } else {
            (self.workers[i].busy_secs / self.uptime_secs).min(1.0)
        }
    }

    /// Jobs completed across all workers.
    pub fn jobs_completed(&self) -> u64 {
        self.workers.iter().map(|w| w.jobs).sum()
    }
}

struct State<J> {
    queue: VecDeque<J>,
    in_flight: usize,
    shutting_down: bool,
}

struct Shared<J> {
    state: Mutex<State<J>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// The shared snapshot slot: workers publish their cumulative
    /// stats here, readers clone it out without touching `state`.
    stats: Mutex<Vec<WorkerStat>>,
    started: Instant,
}

/// A long-lived pool of worker threads draining a bounded job queue.
///
/// Unlike [`parallel_map`] (a scoped, borrow-friendly fan-out over a
/// fixed item list), the pool accepts jobs for as long as it lives and
/// applies backpressure: [`WorkerPool::try_submit`] rejects a job when
/// the queue is full instead of buffering without bound. The service
/// daemon leans on exactly that property to bound its admission queue.
pub struct WorkerPool<J: Send + 'static> {
    shared: Arc<Shared<J>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `workers` threads that each run `handler` over submitted
    /// jobs. At most `capacity` jobs wait in the queue at a time.
    pub fn new<F>(workers: usize, capacity: usize, handler: F) -> WorkerPool<J>
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let n_workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                in_flight: 0,
                shutting_down: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            stats: Mutex::new(vec![WorkerStat::default(); n_workers]),
            started: Instant::now(),
        });
        let handler = Arc::new(handler);
        let threads = (0..n_workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut st = shared.state.lock().expect("pool lock");
                        loop {
                            if let Some(j) = st.queue.pop_front() {
                                st.in_flight += 1;
                                shared.not_full.notify_all();
                                break Some(j);
                            }
                            if st.shutting_down {
                                break None;
                            }
                            st = shared.not_empty.wait(st).expect("pool lock");
                        }
                    };
                    let Some(job) = job else { return };
                    let t = Instant::now();
                    handler(job);
                    {
                        let mut stats = shared.stats.lock().expect("stats lock");
                        stats[w].jobs += 1;
                        stats[w].busy_secs += t.elapsed().as_secs_f64();
                    }
                    shared.state.lock().expect("pool lock").in_flight -= 1;
                    // Wake both submitters waiting for space and
                    // drainers waiting for quiescence.
                    shared.not_full.notify_all();
                })
            })
            .collect();
        WorkerPool { shared, workers: Mutex::new(threads) }
    }

    /// Enqueues a job, or returns it in [`PoolFull`] when the queue is
    /// at capacity or the pool is shutting down. Never blocks.
    pub fn try_submit(&self, job: J) -> Result<(), PoolFull<J>> {
        let mut st = self.shared.state.lock().expect("pool lock");
        if st.shutting_down || st.queue.len() >= self.shared.capacity {
            return Err(PoolFull(job));
        }
        st.queue.push_back(job);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Jobs waiting in the queue plus jobs a worker is running.
    pub fn pending(&self) -> usize {
        let st = self.shared.state.lock().expect("pool lock");
        st.queue.len() + st.in_flight
    }

    /// The current contents of the shared snapshot slot plus queue
    /// occupancy — everything the daemon's `metrics` endpoint reports
    /// about the pool.
    pub fn snapshot(&self) -> PoolSnapshot {
        let (queue_depth, in_flight) = {
            let st = self.shared.state.lock().expect("pool lock");
            (st.queue.len(), st.in_flight)
        };
        PoolSnapshot {
            queue_depth,
            in_flight,
            capacity: self.shared.capacity,
            uptime_secs: self.shared.started.elapsed().as_secs_f64(),
            workers: self.shared.stats.lock().expect("stats lock").clone(),
        }
    }

    /// Blocks until every submitted job has finished.
    pub fn drain(&self) {
        let mut st = self.shared.state.lock().expect("pool lock");
        while !st.queue.is_empty() || st.in_flight > 0 {
            st = self.shared.not_full.wait(st).expect("pool lock");
        }
    }

    /// Stops the pool without draining: workers finish their current
    /// job, abandon anything still queued, and are joined. Queued jobs
    /// stay wherever the caller persisted them (the service daemon
    /// re-enqueues them from disk on its next start).
    pub fn stop(&self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutting_down = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for h in self.workers.lock().expect("workers lock").drain(..) {
            let _ = h.join();
        }
    }

    /// Finishes all queued jobs, then stops and joins the workers.
    pub fn shutdown(self) {
        self.drain();
        self.stop();
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_job() {
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let pool = WorkerPool::new(3, 64, move |n: usize| {
            d.fetch_add(n, Ordering::SeqCst);
        });
        for n in 1..=10 {
            pool.try_submit(n).expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 55);
    }

    #[test]
    fn snapshot_reports_completed_work() {
        let pool = WorkerPool::new(2, 16, move |_: usize| {
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        for n in 0..6 {
            pool.try_submit(n).expect("queue has room");
        }
        pool.drain();
        let snap = pool.snapshot();
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.capacity, 16);
        assert_eq!(snap.workers.len(), 2);
        assert_eq!(snap.jobs_completed(), 6);
        assert!(snap.workers.iter().map(|w| w.busy_secs).sum::<f64>() > 0.0);
        assert!(snap.uptime_secs > 0.0);
        for i in 0..2 {
            assert!((0.0..=1.0).contains(&snap.utilization(i)));
        }
        pool.shutdown();
    }

    #[test]
    fn full_queue_applies_backpressure() {
        // One worker parked on a gate so the queue genuinely fills.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let pool = WorkerPool::new(1, 2, move |_: usize| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().expect("gate");
            while !*open {
                open = cv.wait(open).expect("gate");
            }
        });
        pool.try_submit(0).expect("first job admitted");
        // Once the worker takes job 0 (and parks on the gate), both
        // queue slots become free; retry until they are.
        for n in [1usize, 2] {
            while pool.try_submit(n).is_err() {
                std::thread::yield_now();
            }
        }
        let rejected = pool.try_submit(3);
        assert!(matches!(rejected, Err(PoolFull(3))), "queue at capacity rejects");
        let (lock, cv) = &*gate;
        *lock.lock().expect("gate") = true;
        cv.notify_all();
        pool.drain();
        assert_eq!(pool.pending(), 0);
        pool.shutdown();
    }
}
