//! One function per table/figure of the paper's evaluation.

use std::time::Instant;
use vcfr_core::DrcConfig;
use vcfr_gadget::AttackSurface;
use vcfr_isa::Image;
use vcfr_rewriter::{
    analyze_control_flow, disassemble, randomize, ControlFlowStats, RandomizeConfig,
    RandomizedProgram,
};
use vcfr_obs::ProgressEvent;
use vcfr_sim::{
    emulate, simulate, DrcBacking, EmulatorCostModel, EngineKind, IntervalSample, Mode,
    MultiCoreOutput, Session, SimConfig, SimStats,
};
use vcfr_workloads::{by_name, fig2_suite, spec_suite, spec_suite_scaled, Workload};

pub use crate::pool::parallel_map;
pub use crate::{geomean, mean};

/// The randomization seed every experiment uses (results are
/// deterministic end to end).
pub const SEED: u64 = 2015;

/// All simulation results for one application.
#[derive(Clone, Debug)]
pub struct AppResults {
    /// Application name.
    pub name: &'static str,
    /// Baseline (no randomization).
    pub base: SimStats,
    /// Naive hardware ILR over the scattered layout.
    pub naive: SimStats,
    /// VCFR with a 512-entry DRC.
    pub vcfr512: SimStats,
    /// VCFR with a 128-entry DRC.
    pub vcfr128: SimStats,
    /// VCFR with a 64-entry DRC.
    pub vcfr64: SimStats,
}

/// Results for the whole SPEC-like suite.
pub type Matrix = Vec<AppResults>;

/// Randomizes a workload with the standard experiment configuration.
pub fn randomize_workload(image: &Image) -> RandomizedProgram {
    randomize(image, &RandomizeConfig::with_seed(SEED)).expect("workloads randomize")
}

/// The five machine configurations of the experiment matrix, in column
/// order.
pub const MODE_NAMES: [&str; 5] = ["base", "naive", "vcfr512", "vcfr128", "vcfr64"];

/// Builds the [`Mode`] for matrix column `mode_idx`.
fn matrix_mode<'a>(mode_idx: usize, image: &'a Image, rp: &'a RandomizedProgram) -> Mode<'a> {
    match mode_idx {
        0 => Mode::Baseline(image),
        1 => Mode::NaiveIlr(rp),
        2 => Mode::Vcfr { program: rp, drc: DrcConfig::direct_mapped(512) },
        3 => Mode::Vcfr { program: rp, drc: DrcConfig::direct_mapped(128) },
        4 => Mode::Vcfr { program: rp, drc: DrcConfig::direct_mapped(64) },
        _ => unreachable!("matrix has five configurations"),
    }
}

/// Interval samples taken per matrix run: each run is cut into this many
/// slices for the manifest's phase-behaviour view.
pub const SAMPLES_PER_RUN: u64 = 10;

/// Wall-clock measurement (and interval samples) of one simulator run.
#[derive(Clone, Debug)]
pub struct RunTiming {
    /// Application name.
    pub app: &'static str,
    /// Machine configuration (one of [`MODE_NAMES`]).
    pub mode: &'static str,
    /// Instructions the run committed.
    pub instructions: u64,
    /// Wall-clock seconds the run took.
    pub wall_s: f64,
    /// Simulated instructions per host second.
    pub insts_per_s: f64,
    /// Whether the superblock fast path was enabled (the matrix always
    /// runs with it on; equivalence is pinned by `superblock_equiv`).
    pub superblock: bool,
    /// Interval samples ([`SAMPLES_PER_RUN`] slices; deterministic — a
    /// pure function of the workload and configuration).
    pub samples: Vec<IntervalSample>,
}

/// Timing of a whole experiment matrix.
#[derive(Clone, Debug)]
pub struct MatrixTiming {
    /// One record per (application, configuration) simulator run.
    pub runs: Vec<RunTiming>,
    /// Wall-clock seconds the randomization stage took (sum over apps).
    pub randomize_s: f64,
    /// Wall-clock seconds for the whole matrix (randomize + simulate).
    pub wall_s: f64,
    /// Worker threads used.
    pub threads: usize,
}

/// Worker-thread count for the parallel experiment matrix: the
/// `RAYON_NUM_THREADS` environment variable when set (the conventional
/// knob for this kind of fan-out), otherwise the machine's available
/// parallelism.
pub fn default_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Runs the matrix over an arbitrary workload slice on `threads`
/// workers: first every randomization (one job per app), then every
/// simulator run (one job per app × configuration), so the fan-out is
/// `5 × apps` wide and no figure ever re-simulates.
pub fn matrix_over(suite: &[Workload], threads: usize) -> (Matrix, MatrixTiming) {
    matrix_over_observed(suite, threads, &|_| {})
}

/// [`matrix_over`] with a per-cell observer: `on_cell` fires from the
/// worker thread as each (app, configuration) run finishes, with that
/// run's [`RunTiming`]. The repro binary uses it to print live progress
/// lines for long matrices; the observer sees wall-clock data only, so
/// attaching it cannot perturb the simulated results.
pub fn matrix_over_observed(
    suite: &[Workload],
    threads: usize,
    on_cell: &(dyn Fn(&RunTiming) + Sync),
) -> (Matrix, MatrixTiming) {
    matrix_over_tapped(suite, threads, 0, &|_| {}, on_cell)
}

/// [`matrix_over_observed`] with a telemetry tap on every simulator
/// session: when `progress_every > 0`, each run emits a
/// [`ProgressEvent`] at every `progress_every`-instruction boundary,
/// forwarded to `on_progress` from the worker threads. The simulated
/// results and manifests are bit-identical with the tap on or off —
/// `repro telemetry-smoke` gates on exactly that.
pub fn matrix_over_tapped(
    suite: &[Workload],
    threads: usize,
    progress_every: u64,
    on_progress: &(dyn Fn(&ProgressEvent) + Sync),
    on_cell: &(dyn Fn(&RunTiming) + Sync),
) -> (Matrix, MatrixTiming) {
    let t_total = Instant::now();
    let cfg = SimConfig::default();

    // Stage 1: randomize each app once; every configuration shares the
    // result.
    let t_rand = Instant::now();
    let programs = parallel_map(suite.iter().collect(), threads, |_, w: &Workload| {
        randomize_workload(&w.image)
    });
    let randomize_s = t_rand.elapsed().as_secs_f64();

    // Stage 2: one job per (app, configuration) cell.
    let cells: Vec<(usize, usize)> =
        (0..suite.len()).flat_map(|a| (0..MODE_NAMES.len()).map(move |m| (a, m))).collect();
    let outputs = parallel_map(cells, threads, |_, (a, m)| {
        let w = &suite[a];
        let t = Instant::now();
        let interval = (w.max_insts / SAMPLES_PER_RUN).max(1);
        let outcome = Session::new(matrix_mode(m, &w.image, &programs[a]), &cfg, w.max_insts)
            .map(|s| s.with_sampling(interval))
            .map(|s| {
                if progress_every > 0 {
                    s.with_progress(progress_every, |e| on_progress(e))
                } else {
                    s
                }
            })
            .and_then(|mut s| s.run())
            .expect("matrix cell runs");
        let (out, samples) = (outcome.output, outcome.samples);
        let wall_s = t.elapsed().as_secs_f64();
        let instructions = out.stats.instructions;
        let timing = RunTiming {
            app: w.name,
            mode: MODE_NAMES[m],
            instructions,
            wall_s,
            insts_per_s: instructions as f64 / wall_s.max(1e-9),
            superblock: true,
            samples,
        };
        on_cell(&timing);
        (out, timing)
    });

    let mut rows = Matrix::new();
    let mut runs = Vec::with_capacity(outputs.len());
    for (a, cell) in outputs.chunks_exact(MODE_NAMES.len()).enumerate() {
        let w = &suite[a];
        // Functional equivalence across every mode is part of the
        // harness: randomization must never change program semantics.
        for (out, _) in &cell[1..] {
            assert_eq!(cell[0].0.outcome.output, out.outcome.output, "{}", w.name);
        }
        rows.push(AppResults {
            name: w.name,
            base: cell[0].0.stats,
            naive: cell[1].0.stats,
            vcfr512: cell[2].0.stats,
            vcfr128: cell[3].0.stats,
            vcfr64: cell[4].0.stats,
        });
        runs.extend(cell.iter().map(|(_, t)| t.clone()));
    }
    let timing = MatrixTiming {
        runs,
        randomize_s,
        wall_s: t_total.elapsed().as_secs_f64(),
        threads: threads.max(1),
    };
    (rows, timing)
}

/// Runs one application through every machine configuration, serially on
/// the calling thread.
pub fn run_app(w: &Workload) -> AppResults {
    let cfg = SimConfig::default();
    let rp = randomize_workload(&w.image);
    let run = |mode: Mode| {
        Session::new(mode, &cfg, w.max_insts)
            .and_then(|mut s| s.run())
            .expect("app runs")
            .output
    };
    let base = run(Mode::Baseline(&w.image));
    let naive = run(Mode::NaiveIlr(&rp));
    let vcfr512 = run(Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(512) });
    let vcfr128 = run(Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) });
    let vcfr64 = run(Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(64) });

    // Functional equivalence across every mode is part of the harness.
    assert_eq!(base.outcome.output, naive.outcome.output, "{}", w.name);
    assert_eq!(base.outcome.output, vcfr512.outcome.output, "{}", w.name);
    assert_eq!(base.outcome.output, vcfr128.outcome.output, "{}", w.name);
    assert_eq!(base.outcome.output, vcfr64.outcome.output, "{}", w.name);

    AppResults {
        name: w.name,
        base: base.stats,
        naive: naive.stats,
        vcfr512: vcfr512.stats,
        vcfr128: vcfr128.stats,
        vcfr64: vcfr64.stats,
    }
}

/// Like [`run_app`], but routed through the parallel matrix machinery
/// (the determinism guard in the test suite compares the two paths
/// bit for bit).
pub fn run_app_parallel(w: &Workload, threads: usize) -> AppResults {
    let (mut m, _) = matrix_over(std::slice::from_ref(w), threads);
    m.pop().expect("one app in, one row out")
}

/// Runs the full 11-application SPEC-like matrix (the expensive step all
/// performance figures share) on [`default_threads`] workers.
pub fn run_matrix() -> Matrix {
    run_matrix_timed(default_threads()).0
}

/// [`run_matrix`] with an explicit worker count, also returning per-run
/// wall-clock timing (the `BENCH_repro.json` payload).
pub fn run_matrix_timed(threads: usize) -> (Matrix, MatrixTiming) {
    matrix_over(&spec_suite(), threads)
}

/// [`run_matrix_timed`] over the scale-`scale` suite
/// (`vcfr_workloads::spec_suite_scaled`): the same programs, with their
/// outer repeat counts and instruction budgets multiplied, for
/// longer-horizon timing runs. Scale 1 is the calibrated matrix.
pub fn run_matrix_timed_scaled(threads: usize, scale: u64) -> (Matrix, MatrixTiming) {
    matrix_over(&spec_suite_scaled(scale), threads)
}

/// Measures the superblock fast path on a purpose-built no-stall
/// program: one straight-line block of 400 register-only ALU
/// instructions per loop iteration, hot in the IL1 after the first
/// iteration, so cycle accounting is the only per-instruction work.
/// Returns the run timing with the fast path on and off (same program,
/// same budget) — the pair the `BENCH_repro.json` artefact records so
/// the ≥100M insts/s target stays auditable.
pub fn nostall_throughput() -> (RunTiming, RunTiming) {
    use vcfr_isa::{AluOp, Asm, Cond, Reg};
    const BODY: usize = 400;
    const LOOPS: i64 = 12_500;
    let mut a = Asm::new(0x1000);
    a.mov_ri(Reg::Rcx, LOOPS);
    let top = a.here();
    for k in 0..BODY {
        match k % 4 {
            0 => a.alu_ri(AluOp::Add, Reg::Rax, 3),
            1 => a.alu_ri(AluOp::Xor, Reg::Rdx, 0x55),
            2 => a.alu_rr(AluOp::Add, Reg::Rdx, Reg::Rax),
            _ => a.mov_rr(Reg::Rbx, Reg::Rdx),
        }
    }
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, top);
    a.emit_output(Reg::Rdx);
    a.halt();
    let image = a.finish().expect("no-stall program assembles");
    let budget = (BODY as u64 + 3) * (LOOPS as u64) + 16;

    let cfg = SimConfig::default();
    let run = |superblocks: bool| {
        let t = Instant::now();
        let out = Session::new(Mode::Baseline(&image), &cfg, budget)
            .map(|s| s.with_superblocks(superblocks))
            .and_then(|mut s| s.run())
            .expect("no-stall program runs");
        let wall_s = t.elapsed().as_secs_f64();
        let instructions = out.output.stats.instructions;
        RunTiming {
            app: "nostall",
            mode: "base",
            instructions,
            wall_s,
            insts_per_s: instructions as f64 / wall_s.max(1e-9),
            superblock: superblocks,
            samples: Vec::new(),
        }
    };
    (run(true), run(false))
}

// ---------------------------------------------------------------------
// Figure 2 — emulation slowdown
// ---------------------------------------------------------------------

/// One row of Figure 2.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Application name.
    pub name: &'static str,
    /// Host cycles per guest instruction under emulation.
    pub emulated_cpi: f64,
    /// Slowdown versus native execution of the same window.
    pub slowdown: f64,
}

/// Figure 2: performance decrease of instruction-level emulation versus
/// native execution (paper: hundreds of times).
pub fn fig2() -> Vec<Fig2Row> {
    let cfg = SimConfig::default();
    fig2_suite()
        .iter()
        .map(|w| {
            let native =
                simulate(Mode::Baseline(&w.image), &cfg, w.max_insts).expect("baseline runs");
            let emu = emulate(&w.image, &EmulatorCostModel::default(), w.max_insts)
                .expect("emulation runs");
            Fig2Row {
                name: w.name,
                emulated_cpi: emu.cycles_per_instruction(),
                slowdown: emu.slowdown_vs(native.stats.cycles),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 3 — naive ILR cache impact
// ---------------------------------------------------------------------

/// One row of Figure 3.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// Application name.
    pub name: &'static str,
    /// Baseline IL1 miss rate (percent).
    pub base_il1_pct: f64,
    /// Naive-ILR IL1 miss rate (percent).
    pub naive_il1_pct: f64,
    /// IL1 miss-rate ratio (naive / baseline). NOTE: the synthetic
    /// baselines are nearly miss-free, which inflates this ratio
    /// relative to the paper; read it together with the absolute rates.
    pub il1_miss_ratio: f64,
    /// Increase in useless-prefetch rate, percentage points.
    pub prefetch_useless_delta_pct: f64,
    /// Increase in L2 pressure (reads from the L1s), percent.
    pub l2_pressure_increase_pct: f64,
}

/// Figure 3: the impact of the naive approach on the L1 and L2 caches.
pub fn fig3(matrix: &Matrix) -> Vec<Fig3Row> {
    matrix
        .iter()
        .map(|r| {
            let base_rate = r.base.il1.miss_rate().max(1e-6);
            let naive_rate = r.naive.il1.miss_rate();
            let base_useless = r.base.il1.prefetch_useless_rate();
            let naive_useless = r.naive.il1.prefetch_useless_rate();
            let base_l2 = r.base.l2_reads_from_l1.max(1) as f64;
            let naive_l2 = r.naive.l2_reads_from_l1 as f64;
            Fig3Row {
                name: r.name,
                base_il1_pct: 100.0 * r.base.il1.miss_rate(),
                naive_il1_pct: 100.0 * naive_rate,
                il1_miss_ratio: naive_rate / base_rate,
                prefetch_useless_delta_pct: 100.0 * (naive_useless - base_useless),
                l2_pressure_increase_pct: 100.0 * (naive_l2 / base_l2 - 1.0),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 4 — naive ILR IPC
// ---------------------------------------------------------------------

/// Figure 4: normalized IPC of straightforward hardware ILR (paper: mean
/// ≈ 0.61–0.66 of baseline).
pub fn fig4(matrix: &Matrix) -> Vec<(&'static str, f64)> {
    matrix.iter().map(|r| (r.name, r.naive.ipc() / r.base.ipc())).collect()
}

// ---------------------------------------------------------------------
// Table I — qualitative comparison
// ---------------------------------------------------------------------

/// Table I, reproduced programmatically from the three mode definitions.
pub fn table1() -> String {
    let rows = [
        ("Execution", "no randomization", "randomized control flow", "randomized control flow"),
        ("Instruction locality", "preserved", "destroyed", "preserved"),
        ("Instruction prefetch", "effective", "not effective", "effective"),
        ("Control flow diversity", "no diversity", "diversified", "diversified"),
    ];
    let mut s = String::new();
    s.push_str(&format!(
        "{:<24} | {:<18} | {:<26} | {:<26}\n",
        "", "No Randomization", "Naive Hardware ILR", "Our Approach (VCFR)"
    ));
    s.push_str(&"-".repeat(102));
    s.push('\n');
    for (k, a, b, c) in rows {
        s.push_str(&format!("{k:<24} | {a:<18} | {b:<26} | {c:<26}\n"));
    }
    s
}

// ---------------------------------------------------------------------
// Table II / Figure 9 — static control-flow statistics
// ---------------------------------------------------------------------

/// Table II: per-application static control-transfer counts.
pub fn table2() -> Vec<(&'static str, ControlFlowStats)> {
    spec_suite()
        .iter()
        .map(|w| {
            let d = disassemble(&w.image).expect("workloads disassemble");
            (w.name, analyze_control_flow(&w.image, &d))
        })
        .collect()
}

/// Figure 9: functions with and without `ret`, per application.
pub fn fig9() -> Vec<(&'static str, u64, u64)> {
    table2().into_iter().map(|(n, s)| (n, s.funcs_with_ret, s.funcs_without_ret)).collect()
}

// ---------------------------------------------------------------------
// Figure 11 / §V-B — gadget surface
// ---------------------------------------------------------------------

/// One row of Figure 11.
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// Application name.
    pub name: &'static str,
    /// Gadgets in the original binary.
    pub total_gadgets: usize,
    /// Percentage removed by randomization.
    pub removal_pct: f64,
    /// Payload templates assemblable before randomization.
    pub payloads_before: usize,
    /// Payload templates assemblable after.
    pub payloads_after: usize,
}

/// Figure 11: gadget removal (paper: ≈98% average; payloads assemblable
/// for every benchmark before, none after).
///
/// A small fail-over set is kept un-randomized (the library functions
/// whose addresses the conservative analysis could not prove rewritable —
/// here every 64th function symbol), matching the paper's residual
/// surface.
pub fn fig11() -> Vec<Fig11Row> {
    spec_suite()
        .iter()
        .map(|w| {
            let keep: Vec<String> = w
                .image
                .symbols
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 64 == 7)
                .map(|(_, s)| s.name.clone())
                .collect();
            let mut cfg = RandomizeConfig::with_seed(SEED);
            cfg.keep_unrandomized = keep;
            let rp = randomize(&w.image, &cfg).expect("workloads randomize");
            let c = AttackSurface::scan(&w.image).against(&rp);
            Fig11Row {
                name: w.name,
                total_gadgets: c.total_gadgets,
                removal_pct: c.removal_pct(),
                payloads_before: c.payloads_before,
                payloads_after: c.payloads_after,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figures 12–15 — VCFR performance, DRC behaviour, power
// ---------------------------------------------------------------------

/// Figure 12: IPC speedup of VCFR (128-entry DRC) over naive hardware ILR
/// (paper: mean 1.63×).
pub fn fig12(matrix: &Matrix) -> Vec<(&'static str, f64)> {
    matrix.iter().map(|r| (r.name, r.vcfr128.ipc() / r.naive.ipc())).collect()
}

/// Figure 13: normalized IPC under different DRC sizes (paper: ≥97.9% of
/// baseline even with 64 entries).
pub fn fig13(matrix: &Matrix) -> Vec<(&'static str, f64, f64, f64)> {
    matrix
        .iter()
        .map(|r| {
            let b = r.base.ipc();
            (r.name, r.vcfr512.ipc() / b, r.vcfr128.ipc() / b, r.vcfr64.ipc() / b)
        })
        .collect()
}

/// Figure 14: DRC miss rates at 512 and 64 entries (paper: 4.5% and
/// 20.6% average).
pub fn fig14(matrix: &Matrix) -> Vec<(&'static str, f64, f64)> {
    matrix
        .iter()
        .map(|r| {
            let m512 = r.vcfr512.drc.expect("vcfr stats").miss_rate();
            let m64 = r.vcfr64.drc.expect("vcfr stats").miss_rate();
            (r.name, 100.0 * m512, 100.0 * m64)
        })
        .collect()
}

/// Figure 15: DRC dynamic power overhead at 128 entries (paper: 0.18% of
/// CPU dynamic power on average).
pub fn fig15(matrix: &Matrix) -> Vec<(&'static str, f64)> {
    let cfg = SimConfig::default();
    matrix
        .iter()
        .map(|r| {
            let b = vcfr_power::analyze(&r.vcfr128, &cfg, Some(DrcConfig::direct_mapped(128)));
            (r.name, b.drc_overhead_pct())
        })
        .collect()
}

/// Convenience used by tests: a reduced matrix over a few fast apps.
pub fn run_small_matrix(names: &[&str], budget: u64) -> Matrix {
    names
        .iter()
        .map(|n| {
            let mut w = by_name(n).expect("known workload");
            w.max_insts = w.max_insts.min(budget);
            run_app(&w)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Ablations beyond the paper (see DESIGN.md §6)
// ---------------------------------------------------------------------

/// One ablation measurement.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// What was varied.
    pub setting: String,
    /// Normalized IPC versus the unmodified baseline machine.
    pub normalized_ipc: f64,
    /// DRC miss rate (where applicable).
    pub drc_miss_pct: f64,
    /// Extra note (e.g. iTLB misses).
    pub note: String,
}

/// DRC design-space and system-level ablations on one representative
/// call-heavy application (`gcc`).
pub fn ablations() -> Vec<AblationRow> {
    let w = by_name("gcc").expect("gcc exists");
    let base_cfg = SimConfig::default();
    let rp = randomize_workload(&w.image);
    let base =
        simulate(Mode::Baseline(&w.image), &base_cfg, w.max_insts).expect("baseline runs");
    let base_ipc = base.stats.ipc();

    let mut rows = Vec::new();
    let mut push = |setting: String, stats: &SimStats, note: String| {
        rows.push(AblationRow {
            setting,
            normalized_ipc: stats.ipc() / base_ipc,
            drc_miss_pct: stats.drc.map(|d| 100.0 * d.miss_rate()).unwrap_or(0.0),
            note,
        });
    };

    // Associativity at fixed capacity (the paper argues direct-mapped
    // suffices).
    for (entries, ways) in [(128, 1), (128, 2), (128, 4)] {
        let out = simulate(
            Mode::Vcfr { program: &rp, drc: DrcConfig { entries, ways } },
            &base_cfg,
            w.max_insts,
        )
        .expect("vcfr runs");
        push(format!("drc 128 entries, {ways}-way"), &out.stats, String::new());
    }

    // Backing store: shared L2 (paper) vs dedicated fixed-latency SRAM.
    for (name, backing) in [
        ("walks via shared L2 (paper)", DrcBacking::SharedL2),
        ("dedicated store, 12 cycles", DrcBacking::Dedicated { latency: 12 }),
        ("dedicated store, 30 cycles", DrcBacking::Dedicated { latency: 30 }),
    ] {
        let cfg = SimConfig { drc_backing: backing, ..base_cfg };
        let out = simulate(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
            &cfg,
            w.max_insts,
        )
        .expect("vcfr runs");
        push(format!("backing: {name}"), &out.stats, String::new());
    }

    // Context switches: flush the DRC periodically.
    for interval in [None, Some(100_000u64), Some(20_000u64)] {
        let cfg = SimConfig { drc_flush_interval: interval, ..base_cfg };
        let out = simulate(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
            &cfg,
            w.max_insts,
        )
        .expect("vcfr runs");
        let name = match interval {
            None => "no context switches (paper)".to_string(),
            Some(n) => format!("DRC flush every {n} insts"),
        };
        push(name, &out.stats, String::new());
    }

    // §IV-D page-confined randomization: how much of the naive-ILR pain
    // does confinement recover, and what happens to the iTLB?
    let full = simulate(Mode::NaiveIlr(&rp), &base_cfg, w.max_insts).expect("naive runs");
    let mut conf_cfg = RandomizeConfig::with_seed(SEED);
    conf_cfg.page_confined = true;
    let rp_conf = randomize(&w.image, &conf_cfg).expect("confined randomize");
    let confined =
        simulate(Mode::NaiveIlr(&rp_conf), &base_cfg, w.max_insts).expect("confined runs");
    push(
        "naive ILR, full scatter".into(),
        &full.stats,
        format!("iTLB misses {}", full.stats.itlb.misses),
    );
    push(
        "naive ILR, page-confined (§IV-D)".into(),
        &confined.stats,
        format!("iTLB misses {}", confined.stats.itlb.misses),
    );

    rows
}

/// §IV-A option 1 code-size study: expanding safely-randomizable calls
/// into `push; jmp` per workload.
pub fn call_expansion() -> Vec<(&'static str, usize, usize, f64)> {
    spec_suite()
        .iter()
        .map(|w| {
            let mut cfg = RandomizeConfig::with_seed(SEED);
            cfg.software_return_randomization = true;
            let rp = randomize(&w.image, &cfg).expect("workloads randomize");
            let text = w.image.text().bytes.len();
            let growth = 100.0 * rp.stats.expansion_bytes as f64 / text as f64;
            (w.name, rp.stats.software_expanded_calls, rp.stats.expansion_bytes, growth)
        })
        .collect()
}

/// Randomization entropy: bits of uncertainty per instruction position
/// (§V-C: "since randomization is done at instruction granularity, there
/// is a large randomization space").
pub fn entropy() -> Vec<(&'static str, f64)> {
    spec_suite()
        .iter()
        .map(|w| {
            let rp = randomize_workload(&w.image);
            let span = (rp.region.1 - rp.region.0) as f64;
            // Each instruction lands at any free byte of the region.
            ((w).name, span.log2())
        })
        .collect()
}

/// §IX future-work preview: the three machines on a 4-wide out-of-order
/// core, routed through the same [`Session`] facade as the in-order
/// matrix. Returns `(app, baseline IPC, naive normalized, vcfr
/// normalized)`.
pub fn ooo_preview() -> Vec<(&'static str, f64, f64, f64)> {
    let cfg = SimConfig { engine: EngineKind::Ooo, ..SimConfig::default() };
    let run = |mode: Mode, budget: u64| {
        Session::new(mode, &cfg, budget)
            .and_then(|mut s| s.run())
            .expect("ooo session runs")
            .output
    };
    spec_suite()
        .iter()
        .map(|w| {
            let rp = randomize_workload(&w.image);
            let base = run(Mode::Baseline(&w.image), w.max_insts);
            let naive = run(Mode::NaiveIlr(&rp), w.max_insts);
            let vcfr = run(
                Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
                w.max_insts,
            );
            let b = base.stats.ipc();
            (w.name, b, naive.stats.ipc() / b, vcfr.stats.ipc() / b)
        })
        .collect()
}

/// Layout-sensitivity study: the paper evaluates one randomized layout
/// per binary; here each app is re-randomized with several seeds and the
/// headline metrics are reported as mean ± spread, showing how much the
/// conclusions depend on the particular layout drawn.
pub fn seed_variance(names: &[&str], seeds: &[u64]) -> Vec<(String, f64, f64, f64, f64)> {
    let cfg = SimConfig::default();
    names
        .iter()
        .map(|name| {
            let w = by_name(name).expect("known workload");
            let base = simulate(Mode::Baseline(&w.image), &cfg, w.max_insts).expect("runs");
            let mut naive_norm = Vec::new();
            let mut vcfr_norm = Vec::new();
            for &seed in seeds {
                let rp = randomize(&w.image, &RandomizeConfig::with_seed(seed))
                    .expect("randomizes");
                let n = simulate(Mode::NaiveIlr(&rp), &cfg, w.max_insts).expect("runs");
                let v = simulate(
                    Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
                    &cfg,
                    w.max_insts,
                )
                .expect("runs");
                naive_norm.push(n.stats.ipc() / base.stats.ipc());
                vcfr_norm.push(v.stats.ipc() / base.stats.ipc());
            }
            let spread = |v: &[f64]| {
                let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                hi - lo
            };
            (
                name.to_string(),
                mean(naive_norm.iter().copied()),
                spread(&naive_norm),
                mean(vcfr_norm.iter().copied()),
                spread(&vcfr_norm),
            )
        })
        .collect()
}

/// Runs a heterogeneous two-core session (shared L2) through the
/// [`Session`] facade and returns the full per-core breakdown.
fn duo(modes: Vec<Mode>, cfg: &SimConfig, budget: u64) -> MultiCoreOutput {
    Session::new_heterogeneous(&modes, cfg, budget)
        .and_then(|mut s| s.run())
        .expect("multicore session runs")
        .multicore
        .expect("multicore sessions carry the per-core breakdown")
}

/// §IV-D multi-core demonstration: two cores over a shared L2, each
/// running a (differently) randomized program. Returns
/// `(pairing, core0 norm IPC, core1 norm IPC, shared-L2 miss rate %)`.
pub fn multicore_demo() -> Vec<(String, f64, f64, f64)> {
    let cfg = SimConfig { engine: EngineKind::Multicore { cores: 2 }, ..SimConfig::default() };
    let a = by_name("hmmer").expect("known");
    let b = by_name("h264ref").expect("known");
    let budget = 300_000;

    let solo = duo(vec![Mode::Baseline(&a.image), Mode::Baseline(&b.image)], &cfg, budget);
    let base0 = solo.per_core[0].ipc();
    let base1 = solo.per_core[1].ipc();

    let rp_a = randomize(&a.image, &RandomizeConfig::with_seed(SEED)).expect("randomizes");
    let rp_b =
        randomize(&b.image, &RandomizeConfig::with_seed(SEED + 1)).expect("randomizes");

    let mut rows = Vec::new();
    let vcfr = duo(
        vec![
            Mode::Vcfr { program: &rp_a, drc: DrcConfig::direct_mapped(128) },
            Mode::Vcfr { program: &rp_b, drc: DrcConfig::direct_mapped(128) },
        ],
        &cfg,
        budget,
    );
    rows.push((
        "VCFR + VCFR".to_string(),
        vcfr.per_core[0].ipc() / base0,
        vcfr.per_core[1].ipc() / base1,
        100.0 * vcfr.shared_l2.miss_rate(),
    ));
    let naive = duo(vec![Mode::NaiveIlr(&rp_a), Mode::NaiveIlr(&rp_b)], &cfg, budget);
    rows.push((
        "naive + naive".to_string(),
        naive.per_core[0].ipc() / base0,
        naive.per_core[1].ipc() / base1,
        100.0 * naive.shared_l2.miss_rate(),
    ));
    rows
}

/// Live-rerandomization epoch of the multicore matrix cells, in
/// committed instructions on the VCFR core.
pub const MULTICORE_RERAND_EPOCH: u64 = 25_000;

/// One cell of the `repro multicore` rerand matrix: a VCFR core swapping
/// its live layout every [`MULTICORE_RERAND_EPOCH`] committed
/// instructions while a baseline sibling streams through the shared L2.
#[derive(Clone, Debug)]
pub struct MulticoreCell {
    /// The app the re-randomizing VCFR core (core 0) runs.
    pub vcfr_app: &'static str,
    /// The app the baseline sibling (core 1) runs.
    pub base_app: &'static str,
    /// Per-core instruction budget.
    pub budget: u64,
    /// The full two-core breakdown.
    pub output: MultiCoreOutput,
}

/// Runs the multicore rerand cells on `threads` workers. The results
/// are a pure function of the pairings (the event loop is deterministic
/// and each cell is independent), so manifests built from them are
/// byte-identical across worker-thread counts — `repro multicore-smoke`
/// gates on exactly that.
pub fn multicore_rerand_cells(threads: usize, budget: u64) -> Vec<MulticoreCell> {
    let pairings: Vec<(&'static str, &'static str)> =
        vec![("hmmer", "bzip2"), ("h264ref", "hmmer")];
    let cfg = SimConfig::builder()
        .engine(EngineKind::Multicore { cores: 2 })
        .rerand_epoch(Some(MULTICORE_RERAND_EPOCH))
        .drc_entries(Some(128))
        .build()
        .expect("the multicore rerand config is valid");
    parallel_map(pairings, threads, |_, (vcfr_app, base_app)| {
        let v = by_name(vcfr_app).expect("known workload");
        let b = by_name(base_app).expect("known workload");
        let rp = randomize_workload(&v.image);
        let output = duo(
            vec![
                Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
                Mode::Baseline(&b.image),
            ],
            &cfg,
            budget,
        );
        MulticoreCell { vcfr_app, base_app, budget, output }
    })
}
