//! The dependability half of the evaluation: a seeded fault-injection
//! campaign over the workload suite, contrasting the baseline machine
//! (no mediation hardware) with VCFR (DRC + tables + bitmap + visibility
//! bit) — a Figure-11-style table of injected vs. detected vs.
//! silently-corrupting faults.
//!
//! Everything is a pure function of (workload, campaign seed,
//! configuration): the per-app fault schedule is derived from the app
//! *name*, so adding or reordering apps never reshuffles another app's
//! faults, and the resulting manifests are byte-identical across worker
//! thread counts.

use crate::experiments::{parallel_map, randomize_workload, SEED};
use std::fmt::Write as _;
use vcfr_core::DrcConfig;
use vcfr_sim::{ContainmentPolicy, FaultPlan, FaultStats, Mode, Session, SimConfig, SimStats};
use vcfr_workloads::Workload;

/// Faults injected per (app, configuration) run.
pub const FAULTS_PER_RUN: usize = 96;

/// The two machines the campaign contrasts, in column order.
pub const CAMPAIGN_MODES: [&str; 2] = ["base", "vcfr128"];

/// One (application, configuration) campaign cell.
#[derive(Clone, Debug)]
pub struct CampaignCell {
    /// Application name.
    pub app: &'static str,
    /// Machine configuration (one of [`CAMPAIGN_MODES`]).
    pub mode: &'static str,
    /// Aggregate fault counters.
    pub faults: FaultStats,
    /// Full simulation statistics of the faulted run.
    pub stats: SimStats,
}

/// The deterministic fault schedule for one application: seeded from the
/// campaign seed and the app name (FNV-style fold), spread over the
/// run's instruction budget.
pub fn fault_plan_for(app: &str, max_insts: u64) -> FaultPlan {
    let mut h = SEED ^ 0xcbf2_9ce4_8422_2325;
    for b in app.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut plan = FaultPlan::generate(h, FAULTS_PER_RUN, max_insts);
    plan.policy = ContainmentPolicy::Recover;
    plan
}

/// Runs the campaign over `suite` on `threads` workers: each app is
/// randomized once, then every (app, {base, vcfr128}) cell runs the same
/// per-app fault schedule through a faulted [`Session`]. Results are in
/// (app-major, [`CAMPAIGN_MODES`]) order regardless of scheduling.
pub fn run_campaign(suite: &[Workload], threads: usize) -> Vec<CampaignCell> {
    let cfg = SimConfig::default();
    let programs = parallel_map(suite.iter().collect(), threads, |_, w: &Workload| {
        randomize_workload(&w.image)
    });
    let cells: Vec<(usize, usize)> =
        (0..suite.len()).flat_map(|a| (0..CAMPAIGN_MODES.len()).map(move |m| (a, m))).collect();
    parallel_map(cells, threads, |_, (a, m)| {
        let w = &suite[a];
        let plan = fault_plan_for(w.name, w.max_insts);
        let mode = match m {
            0 => Mode::Baseline(&w.image),
            _ => Mode::Vcfr { program: &programs[a], drc: DrcConfig::direct_mapped(128) },
        };
        let outcome = Session::new(mode, &cfg, w.max_insts)
            .map(|s| s.with_faults(&plan))
            .and_then(|mut s| s.run())
            .expect("campaign cell runs");
        CampaignCell {
            app: w.name,
            mode: CAMPAIGN_MODES[m],
            faults: outcome.faults,
            stats: outcome.output.stats,
        }
    })
}

/// Renders the campaign as the Figure-11-style detection-coverage table:
/// per app, faults injected and how each machine resolved them
/// (detected / silent / masked, plus coverage over consequential
/// faults).
pub fn coverage_table(cells: &[CampaignCell]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>4}  {:>14} {:>14}  {:>14} {:>14}",
        "app", "inj", "base det/sil", "base cover", "vcfr det/sil", "vcfr cover"
    );
    let mut base_cov = Vec::new();
    let mut vcfr_cov = Vec::new();
    for pair in cells.chunks_exact(CAMPAIGN_MODES.len()) {
        let (b, v) = (&pair[0], &pair[1]);
        base_cov.push(b.faults.coverage());
        vcfr_cov.push(v.faults.coverage());
        let _ = writeln!(
            s,
            "{:<12} {:>4}  {:>7}/{:<6} {:>13.1}%  {:>7}/{:<6} {:>13.1}%",
            b.app,
            b.faults.injected,
            b.faults.detected(),
            b.faults.silent,
            100.0 * b.faults.coverage(),
            v.faults.detected(),
            v.faults.silent,
            100.0 * v.faults.coverage(),
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let _ = writeln!(
        s,
        "{:<12} {:>4}  {:>14} {:>13.1}%  {:>14} {:>13.1}%",
        "mean",
        "",
        "",
        100.0 * mean(&base_cov),
        "",
        100.0 * mean(&vcfr_cov),
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcfr_workloads::by_name;

    fn small_suite() -> Vec<Workload> {
        let mut w = by_name("bzip2").expect("bzip2 exists");
        w.max_insts = w.max_insts.min(50_000);
        vec![w]
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let suite = small_suite();
        let a = run_campaign(&suite, 1);
        let b = run_campaign(&suite, 2);
        assert_eq!(a.len(), CAMPAIGN_MODES.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.app, y.app);
            assert_eq!(x.mode, y.mode);
            assert_eq!(x.faults, y.faults);
            assert_eq!(x.stats.cycles, y.stats.cycles);
        }
    }

    #[test]
    fn vcfr_coverage_beats_baseline_on_the_small_suite() {
        let cells = run_campaign(&small_suite(), 2);
        let base = &cells[0];
        let vcfr = &cells[1];
        assert_eq!(base.mode, "base");
        assert_eq!(vcfr.mode, "vcfr128");
        assert_eq!(base.faults.injected, vcfr.faults.injected);
        assert!(base.faults.injected > 0);
        assert!(
            vcfr.faults.coverage() > base.faults.coverage(),
            "vcfr {} vs base {}",
            vcfr.faults.coverage(),
            base.faults.coverage()
        );
        let table = coverage_table(&cells);
        assert!(table.contains("bzip2"));
        assert!(table.contains("mean"));
    }

    #[test]
    fn fault_plans_depend_on_the_app_name_only() {
        let a = fault_plan_for("bzip2", 50_000);
        let b = fault_plan_for("bzip2", 50_000);
        let c = fault_plan_for("gcc", 50_000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
