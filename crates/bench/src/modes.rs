//! The typed run-mode vocabulary.
//!
//! Every layer used to pass modes around as strings, with two dialects
//! — the experiment matrix said `"base"`/`"vcfr128"`, the service wire
//! said `"baseline"`/`"vcfr"` plus a separate `drc_entries` field — and
//! alias-normalization branches at each boundary. [`ModeSpec`] is the
//! one vocabulary: `Display` emits the canonical matrix form
//! (`base`/`naive`/`vcfr<entries>`), `FromStr` additionally admits the
//! historical aliases so old wire specs and CLI invocations keep
//! working, and the `Display → FromStr` round-trip is proptest-pinned.

use std::fmt;
use std::str::FromStr;

/// How a run executes: unmodified, naive hardware ILR, or VCFR with a
/// de-randomization cache of a given size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ModeSpec {
    /// The unmodified program (the paper's baseline).
    Base,
    /// Naive hardware ILR: scattered layout, no DRC (§III).
    Naive,
    /// VCFR with an on-chip DRC (§IV).
    Vcfr {
        /// DRC entry count (64–512 in the paper's sweep).
        drc_entries: usize,
    },
}

/// The DRC size assumed when a legacy spec says just `vcfr`.
pub const DEFAULT_DRC_ENTRIES: usize = 128;

impl ModeSpec {
    /// The paper's default VCFR configuration (128-entry DRC).
    pub fn vcfr_default() -> ModeSpec {
        ModeSpec::Vcfr { drc_entries: DEFAULT_DRC_ENTRIES }
    }

    /// The DRC entry count, `None` for modes without a DRC.
    pub fn drc_entries(&self) -> Option<usize> {
        match *self {
            ModeSpec::Vcfr { drc_entries } => Some(drc_entries),
            _ => None,
        }
    }

    /// Parses the historical two-field wire form: a mode word plus a
    /// separate DRC size. Accepts both dialects (`base`/`baseline`,
    /// bare `vcfr`, `vcfr<entries>`); an explicit `vcfr<entries>`
    /// suffix wins over the separate field.
    pub fn from_wire(mode: &str, drc_entries: usize) -> Result<ModeSpec, ModeParseError> {
        match mode {
            "vcfr" => validated_vcfr(drc_entries),
            _ => mode.parse(),
        }
    }

    /// Ordering used by reports: base, naive, then VCFR from largest to
    /// smallest DRC (the historical column order).
    pub fn report_rank(&self) -> (u8, i64) {
        match *self {
            ModeSpec::Base => (0, 0),
            ModeSpec::Naive => (1, 0),
            ModeSpec::Vcfr { drc_entries } => (2, -(drc_entries as i64)),
        }
    }
}

impl fmt::Display for ModeSpec {
    /// The canonical matrix vocabulary: `base`, `naive`, `vcfr<entries>`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModeSpec::Base => write!(f, "base"),
            ModeSpec::Naive => write!(f, "naive"),
            ModeSpec::Vcfr { drc_entries } => write!(f, "vcfr{drc_entries}"),
        }
    }
}

/// A mode string outside the accepted vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModeParseError(String);

impl fmt::Display for ModeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mode must be base, naive, or vcfr<drc entries, a positive power of two> (got {:?})",
            self.0
        )
    }
}

impl std::error::Error for ModeParseError {}

fn validated_vcfr(drc_entries: usize) -> Result<ModeSpec, ModeParseError> {
    // Direct-mapped DRCs need a power-of-two set count; rejecting here
    // keeps Drc::new's panic unreachable from parsed input.
    if drc_entries == 0 || !drc_entries.is_power_of_two() {
        return Err(ModeParseError(format!("vcfr{drc_entries}")));
    }
    Ok(ModeSpec::Vcfr { drc_entries })
}

impl FromStr for ModeSpec {
    type Err = ModeParseError;

    fn from_str(s: &str) -> Result<ModeSpec, ModeParseError> {
        match s {
            // `baseline` is the historical service-wire alias.
            "base" | "baseline" => Ok(ModeSpec::Base),
            "naive" => Ok(ModeSpec::Naive),
            // Bare `vcfr` is the historical CLI/wire alias for the
            // paper's default DRC.
            "vcfr" => Ok(ModeSpec::vcfr_default()),
            _ => match s.strip_prefix("vcfr").and_then(|n| n.parse::<usize>().ok()) {
                Some(entries) => validated_vcfr(entries),
                None => Err(ModeParseError(s.to_string())),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_names_round_trip() {
        for (spec, name) in [
            (ModeSpec::Base, "base"),
            (ModeSpec::Naive, "naive"),
            (ModeSpec::Vcfr { drc_entries: 512 }, "vcfr512"),
            (ModeSpec::Vcfr { drc_entries: 64 }, "vcfr64"),
        ] {
            assert_eq!(spec.to_string(), name);
            assert_eq!(name.parse::<ModeSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn historical_aliases_admit() {
        assert_eq!("baseline".parse::<ModeSpec>().unwrap(), ModeSpec::Base);
        assert_eq!("vcfr".parse::<ModeSpec>().unwrap(), ModeSpec::vcfr_default());
        assert_eq!(ModeSpec::from_wire("baseline", 64).unwrap(), ModeSpec::Base);
        assert_eq!(
            ModeSpec::from_wire("vcfr", 64).unwrap(),
            ModeSpec::Vcfr { drc_entries: 64 }
        );
        // An explicit suffix wins over the separate field.
        assert_eq!(
            ModeSpec::from_wire("vcfr512", 64).unwrap(),
            ModeSpec::Vcfr { drc_entries: 512 }
        );
    }

    #[test]
    fn bad_modes_are_rejected_with_the_vocabulary_named() {
        for bad in ["turbo", "vcfr0", "vcfr96", "vcfrx", ""] {
            let err = bad.parse::<ModeSpec>().unwrap_err().to_string();
            assert!(err.contains("base, naive, or vcfr"), "{err}");
        }
        assert!(ModeSpec::from_wire("vcfr", 0).is_err());
        assert!(ModeSpec::from_wire("vcfr", 96).is_err());
    }

    #[test]
    fn report_rank_orders_the_matrix_columns() {
        let mut modes = vec![
            ModeSpec::Vcfr { drc_entries: 64 },
            ModeSpec::Base,
            ModeSpec::Vcfr { drc_entries: 512 },
            ModeSpec::Naive,
            ModeSpec::Vcfr { drc_entries: 128 },
        ];
        modes.sort_by_key(|m| m.report_rank());
        let names: Vec<String> = modes.iter().map(|m| m.to_string()).collect();
        assert_eq!(names, ["base", "naive", "vcfr512", "vcfr128", "vcfr64"]);
    }
}
