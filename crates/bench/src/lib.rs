//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation over the synthetic workload suite.
//!
//! The `repro` binary prints the results; the criterion benches and the
//! integration tests reuse the same functions. See `EXPERIMENTS.md` for
//! the paper-vs-measured record.

#![warn(missing_docs)]

pub mod experiments;

#[cfg(test)]
mod tests;

pub use experiments::{
    fig11, fig12, fig13, fig14, fig15, fig2, fig3, fig4, fig9, run_app, run_matrix, table1,
    table2, AppResults, Fig11Row, Fig2Row, Fig3Row, Matrix,
};
