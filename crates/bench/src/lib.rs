//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation over the synthetic workload suite.
//!
//! The `repro` binary prints the results; the criterion benches and the
//! integration tests reuse the same functions. See `EXPERIMENTS.md` for
//! the paper-vs-measured record.

#![warn(missing_docs)]

pub mod campaign;
pub mod experiments;
pub mod frontier;
pub mod manifests;
pub mod modes;
pub mod pool;
pub mod shard;

#[cfg(test)]
mod tests;

pub use campaign::{
    coverage_table, fault_plan_for, run_campaign, CampaignCell, CAMPAIGN_MODES, FAULTS_PER_RUN,
};
pub use experiments::{
    default_threads, fig11, fig12, fig13, fig14, fig15, fig2, fig3, fig4, fig9, matrix_over,
    matrix_over_observed, matrix_over_tapped, run_app, run_app_parallel, run_matrix,
    run_matrix_timed, table1, table2, AppResults, Fig11Row, Fig2Row, Fig3Row, Matrix,
    MatrixTiming, RunTiming, MODE_NAMES,
};
pub use frontier::{
    frontier_fuzz_config, frontier_pareto_table, run_frontier, shard_frontier, FrontierPoint,
    FrontierRow, FrontierSummary, FRONTIER_POINTS,
};
pub use manifests::{
    bench_record, build_campaign_manifests, build_engine_manifest, build_fault_manifest,
    build_fault_manifest_parts, build_frontier_manifest, build_frontier_manifests,
    build_manifest, build_matrix_manifests, frontier_summary_from_manifest, rand_params_json,
    write_manifests,
};
pub use modes::{ModeParseError, ModeSpec, DEFAULT_DRC_ENTRIES};
pub use pool::{parallel_map, PoolFull, PoolSnapshot, WorkerPool, WorkerStat};
pub use shard::{
    merge_manifest_bytes, merge_manifest_trees, shard_campaign, shard_matrix, MergeOutcome,
    MergeReport, ShardCell,
};

/// Geometric mean of an iterator of positive values.
pub fn geomean(vals: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in vals {
        log_sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean.
pub fn mean(vals: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in vals {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod mean_tests {
    use super::*;

    #[test]
    fn geomean_of_powers() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty::<f64>()), 0.0);
    }

    #[test]
    fn mean_basics() {
        assert!((mean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(std::iter::empty::<f64>()), 0.0);
    }
}
