//! Criterion micro-benchmarks of the simulator substrates: how fast the
//! building blocks themselves run on the host. These complement the
//! `repro` binary (which regenerates the paper's tables/figures) by
//! tracking the cost of the machinery.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vcfr_core::{Drc, DrcConfig, LayoutMap, OrigAddr, RandAddr, TranslationTable};
use vcfr_isa::{decode, encode, AluOp, Asm, Cond, Inst, Machine, Reg};
use vcfr_sim::{Cache, CacheConfig, Dram, DramConfig, Gshare, GshareConfig};

fn bench_encode_decode(c: &mut Criterion) {
    let insts = [
        Inst::Nop,
        Inst::MovRI { dst: Reg::Rax, imm: 0x1234_5678 },
        Inst::LoadIdx { dst: Reg::Rax, base: Reg::Rbx, index: Reg::Rcx, scale: 3, disp: 64 },
        Inst::Jcc { cc: Cond::Ne, rel: -42 },
        Inst::Call { rel: 1000 },
    ];
    c.bench_function("isa/encode", |b| {
        let mut buf = Vec::with_capacity(64);
        b.iter(|| {
            buf.clear();
            for i in &insts {
                vcfr_isa::encode_into(black_box(i), &mut buf);
            }
            buf.len()
        })
    });
    let bytes: Vec<u8> = insts.iter().flat_map(encode).collect();
    c.bench_function("isa/decode", |b| {
        b.iter(|| {
            let mut off = 0;
            let mut n = 0;
            while off < bytes.len() {
                let (i, next) = vcfr_isa::decode_at(black_box(&bytes), off).unwrap();
                n += i.len();
                off = next;
            }
            n
        })
    });
    let _ = decode(&bytes); // keep the import exercised
}

fn bench_interpreter(c: &mut Criterion) {
    let mut a = Asm::new(0x1000);
    a.mov_ri(Reg::Rcx, 1000);
    let top = a.here();
    a.alu_ri(AluOp::Add, Reg::Rax, 3);
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, top);
    a.halt();
    let img = a.finish().unwrap();
    c.bench_function("isa/interpreter_4k_insts", |b| {
        b.iter(|| Machine::new(black_box(&img)).run(10_000).unwrap().steps)
    });
}

fn bench_cache(c: &mut Criterion) {
    let cfg = CacheConfig { size_bytes: 32 * 1024, ways: 2, line_bytes: 64, latency: 2 };
    c.bench_function("sim/cache_access_stream", |b| {
        let mut cache = Cache::new(cfg);
        let mut addr = 0u32;
        b.iter(|| {
            addr = addr.wrapping_add(64) & 0xf_ffff;
            cache.access(black_box(addr), false).hit
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("sim/dram_access", |b| {
        let mut dram = Dram::new(DramConfig::default());
        let mut now = 0u64;
        let mut addr = 0u32;
        b.iter(|| {
            addr = addr.wrapping_add(4096);
            now = dram.access(black_box(addr), now);
            now
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("sim/gshare_predict_update", |b| {
        let mut g = Gshare::new(GshareConfig { history_bits: 12 });
        let mut pc = 0x1000u32;
        b.iter(|| {
            pc = pc.wrapping_add(16) & 0xffff;
            let p = g.predict(black_box(pc));
            g.update(pc, !p);
            p
        })
    });
}

fn bench_drc(c: &mut Criterion) {
    let map = LayoutMap::from_pairs(
        (0..1024u32).map(|i| (OrigAddr(0x1000 + i * 4), RandAddr(0x2000_0000 + i * 64))),
    )
    .unwrap();
    let table = TranslationTable::from_layout(&map, 0x4000_0000);
    c.bench_function("core/drc_lookup", |b| {
        let mut drc = Drc::new(DrcConfig::direct_mapped(128));
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) & 1023;
            drc.derandomize(black_box(RandAddr(0x2000_0000 + i * 64)), &table).unwrap().hit
        })
    });
}

fn bench_engine_hot_loop(c: &mut Criterion) {
    use vcfr_sim::{simulate, Mode, SimConfig};
    // The cycle engine's per-instruction path end to end (fetch, caches,
    // DRC, predictors) on a real workload — the loop the dense decode
    // index and flat maps exist to keep fast.
    let w = vcfr_workloads::by_name("bzip2").expect("suite workload");
    let rp = vcfr_bench::experiments::randomize_workload(&w.image);
    let cfg = SimConfig::default();
    c.bench_function("sim/engine_hot_loop", |b| {
        b.iter(|| {
            simulate(
                Mode::Vcfr { program: black_box(&rp), drc: DrcConfig::direct_mapped(128) },
                &cfg,
                20_000,
            )
            .unwrap()
            .stats
            .instructions
        })
    });
}

/// A long straight-line register-only body in a short loop: the shape
/// the superblock fast path exists for.
fn straightline_image(body: usize, loops: i64) -> vcfr_isa::Image {
    let mut a = Asm::new(0x1000);
    a.mov_ri(Reg::Rcx, loops);
    let top = a.here();
    for k in 0..body {
        match k % 3 {
            0 => a.alu_ri(AluOp::Add, Reg::Rax, 3),
            1 => a.alu_ri(AluOp::Xor, Reg::Rdx, 0x55),
            _ => a.mov_rr(Reg::Rbx, Reg::Rdx),
        }
    }
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, top);
    a.halt();
    a.finish().unwrap()
}

fn bench_engine_superblock_form(c: &mut Criterion) {
    use vcfr_isa::SUPERBLOCK_MAX_INSTS;
    let img = straightline_image(400, 1);
    // Cold formation: decode-once plus the straight-line walk, the cost
    // the cache amortises away on every later execution of the block.
    c.bench_function("sim/engine_superblock_form_403_insts", |b| {
        b.iter(|| {
            let mut m = Machine::new(black_box(&img));
            m.form_superblock(0x1000, SUPERBLOCK_MAX_INSTS).expect("block forms").len()
        })
    });
}

fn bench_engine_superblock_replay(c: &mut Criterion) {
    use vcfr_sim::{Mode, Session, SimConfig};
    let img = straightline_image(400, 200);
    let cfg = SimConfig::default();
    // The no-stall fast path end to end (~80k committed instructions per
    // iteration), against the same run with the fast path disabled.
    c.bench_function("sim/engine_superblock_replay_80k", |b| {
        b.iter(|| {
            let mut s = Session::new(Mode::Baseline(black_box(&img)), &cfg, 100_000)
                .unwrap()
                .with_superblocks(true);
            s.run().unwrap().output.stats.instructions
        })
    });
    c.bench_function("sim/engine_superblock_off_80k", |b| {
        b.iter(|| {
            let mut s = Session::new(Mode::Baseline(black_box(&img)), &cfg, 100_000)
                .unwrap()
                .with_superblocks(false);
            s.run().unwrap().output.stats.instructions
        })
    });
}

criterion_group!(
    components,
    bench_encode_decode,
    bench_interpreter,
    bench_cache,
    bench_dram,
    bench_predictor,
    bench_drc,
    bench_engine_hot_loop,
    bench_engine_superblock_form,
    bench_engine_superblock_replay
);
criterion_main!(components);
