//! Criterion benches over the paper's experiment pipeline: one group per
//! table/figure, on reduced instruction budgets so `cargo bench` finishes
//! quickly. The full-budget numbers come from the `repro` binary; these
//! benches track that each experiment *keeps regenerating* and how much
//! host time it costs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vcfr_bench::experiments as ex;
use vcfr_core::DrcConfig;
use vcfr_gadget::compare_surface;
use vcfr_rewriter::{analyze_control_flow, disassemble, randomize, RandomizeConfig};
use vcfr_sim::{emulate, simulate, EmulatorCostModel, Mode, SimConfig};

const BUDGET: u64 = 40_000;

fn bench_fig2_emulation(c: &mut Criterion) {
    let w = vcfr_workloads::by_name("bzip2").unwrap();
    c.bench_function("fig2/emulate_bzip2", |b| {
        b.iter(|| {
            emulate(black_box(&w.image), &EmulatorCostModel::default(), BUDGET)
                .unwrap()
                .host_cycles
        })
    });
}

fn bench_fig3_fig4_naive(c: &mut Criterion) {
    let w = vcfr_workloads::by_name("hmmer").unwrap();
    let cfg = SimConfig::default();
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(ex::SEED)).unwrap();
    c.bench_function("fig3_fig4/baseline_vs_naive_hmmer", |b| {
        b.iter(|| {
            let base = simulate(Mode::Baseline(&w.image), &cfg, BUDGET).unwrap();
            let naive = simulate(Mode::NaiveIlr(&rp), &cfg, BUDGET).unwrap();
            black_box(naive.stats.ipc() / base.stats.ipc())
        })
    });
}

fn bench_table2_fig9_static(c: &mut Criterion) {
    let w = vcfr_workloads::by_name("xalan").unwrap();
    c.bench_function("table2_fig9/static_analysis_xalan", |b| {
        b.iter(|| {
            let d = disassemble(black_box(&w.image)).unwrap();
            analyze_control_flow(&w.image, &d).direct_transfers
        })
    });
}

fn bench_fig11_gadgets(c: &mut Criterion) {
    let w = vcfr_workloads::by_name("lbm").unwrap();
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(ex::SEED)).unwrap();
    c.bench_function("fig11/gadget_surface_lbm", |b| {
        b.iter(|| compare_surface(black_box(&w.image), &rp).total_gadgets)
    });
}

fn bench_fig12_fig13_vcfr(c: &mut Criterion) {
    let w = vcfr_workloads::by_name("h264ref").unwrap();
    let cfg = SimConfig::default();
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(ex::SEED)).unwrap();
    c.bench_function("fig12_fig13/vcfr128_h264ref", |b| {
        b.iter(|| {
            simulate(
                Mode::Vcfr { program: black_box(&rp), drc: DrcConfig::direct_mapped(128) },
                &cfg,
                BUDGET,
            )
            .unwrap()
            .stats
            .ipc()
        })
    });
}

fn bench_fig14_drc_sweep(c: &mut Criterion) {
    let w = vcfr_workloads::by_name("gcc").unwrap();
    let cfg = SimConfig::default();
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(ex::SEED)).unwrap();
    c.bench_function("fig14/drc64_gcc", |b| {
        b.iter(|| {
            simulate(
                Mode::Vcfr { program: black_box(&rp), drc: DrcConfig::direct_mapped(64) },
                &cfg,
                BUDGET,
            )
            .unwrap()
            .stats
            .drc
            .unwrap()
            .miss_rate()
        })
    });
}

fn bench_fig15_power(c: &mut Criterion) {
    let w = vcfr_workloads::by_name("namd").unwrap();
    let cfg = SimConfig::default();
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(ex::SEED)).unwrap();
    let drc = DrcConfig::direct_mapped(128);
    let out = simulate(Mode::Vcfr { program: &rp, drc }, &cfg, BUDGET).unwrap();
    c.bench_function("fig15/power_model_namd", |b| {
        b.iter(|| vcfr_power::analyze(black_box(&out.stats), &cfg, Some(drc)).drc_overhead_pct())
    });
}

fn bench_rewriter(c: &mut Criterion) {
    let w = vcfr_workloads::by_name("sjeng").unwrap();
    c.bench_function("rewriter/randomize_sjeng", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            randomize(black_box(&w.image), &RandomizeConfig::with_seed(seed))
                .unwrap()
                .stats
                .randomized
        })
    });
}

criterion_group!(
    experiments,
    bench_fig2_emulation,
    bench_fig3_fig4_naive,
    bench_table2_fig9_static,
    bench_fig11_gadgets,
    bench_fig12_fig13_vcfr,
    bench_fig14_drc_sweep,
    bench_fig15_power,
    bench_rewriter
);
criterion_main!(experiments);
