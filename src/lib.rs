//! # VCFR — hardware-supported instruction address space randomization
//!
//! A reproduction of *"Enhancing Software Dependability and Security with
//! Hardware Supported Instruction Address Space Randomization"* (DSN 2015).
//!
//! This facade crate re-exports every subsystem of the workspace so that
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! * [`isa`] — the variable-length x86-style instruction set, assembler and
//!   functional interpreter.
//! * [`core`] — the paper's contribution as a library: address-space
//!   newtypes, randomization/de-randomization tables and the DRC lookup
//!   buffer model.
//! * [`rewriter`] — the static binary rewriter: disassembly, CFG recovery,
//!   indirect-target analyses and the per-instruction ILR randomizer.
//! * [`sim`] — the cycle-based core model with Baseline / naive-ILR / VCFR
//!   execution modes.
//! * [`power`] — the McPAT-style dynamic power model.
//! * [`gadget`] — the ROPgadget-style scanner and payload assembler.
//! * [`workloads`] — the synthetic SPEC CPU2006-like benchmark programs.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![warn(missing_docs)]

pub use vcfr_core as core;
pub use vcfr_gadget as gadget;
pub use vcfr_isa as isa;
pub use vcfr_power as power;
pub use vcfr_rewriter as rewriter;
pub use vcfr_sim as sim;
pub use vcfr_workloads as workloads;
