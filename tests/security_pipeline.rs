//! Cross-crate security checks: the Figure 11 / §V-B pipeline on real
//! workload binaries.

use vcfr::gadget::{AttackSurface, Capability};
use vcfr::rewriter::{randomize, RandomizeConfig};

#[test]
fn full_randomization_removes_all_gadgets() {
    for name in ["bzip2", "xalan"] {
        let w = vcfr::workloads::by_name(name).unwrap();
        let rp = randomize(&w.image, &RandomizeConfig::with_seed(4)).unwrap();
        let c = AttackSurface::scan(&w.image).against(&rp);
        assert!(c.total_gadgets > 100, "{name}: only {} gadgets", c.total_gadgets);
        // The conservative pointer scan may pin a few instructions at
        // their original addresses (possible unrelocated code pointers),
        // leaving a tiny residue — but never enough to assemble anything.
        assert!(
            c.usable_after * 100 <= c.total_gadgets,
            "{name}: {} of {} gadgets survive",
            c.usable_after,
            c.total_gadgets
        );
        assert_eq!(c.payloads_after, 0, "{name}");
        assert!(c.payloads_before >= 2, "{name}: {}", c.payloads_before);
    }
}

#[test]
fn failover_residue_is_small_and_insufficient_for_payloads() {
    for name in ["hmmer", "gcc"] {
        let w = vcfr::workloads::by_name(name).unwrap();
        let keep: Vec<String> = w
            .image
            .symbols
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 64 == 7)
            .map(|(_, s)| s.name.clone())
            .collect();
        assert!(!keep.is_empty());
        let mut cfg = RandomizeConfig::with_seed(4);
        cfg.keep_unrandomized = keep;
        let rp = randomize(&w.image, &cfg).unwrap();
        let c = AttackSurface::scan(&w.image).against(&rp);
        assert!(c.removal_pct() > 90.0, "{name}: {}", c.removal_pct());
        assert_eq!(c.payloads_after, 0, "{name}");
    }
}

#[test]
fn workload_binaries_have_rich_gadget_populations() {
    // The modified-ROPgadget premise: the *original* binaries offer
    // enough material that at least two payload templates assemble.
    for name in vcfr::workloads::SPEC_NAMES {
        let w = vcfr::workloads::by_name(name).unwrap();
        let surface = AttackSurface::scan(&w.image);
        assert!(surface.gadgets().len() > 50, "{name}: {} gadgets", surface.gadgets().len());
        let assembled =
            surface.payloads().iter().filter(|(_, p)| p.is_some()).count();
        assert!(assembled >= 2, "{name}: only {assembled} templates assemble");
    }
}

#[test]
fn entropy_across_seeds_scatters_the_same_gadget() {
    // The same gadget byte sequence lands at wildly different addresses
    // across seeds — the randomization-space argument of §V-C.
    let w = vcfr::workloads::by_name("lbm").unwrap();
    let probe = w.image.entry;
    let mut homes = std::collections::BTreeSet::new();
    for seed in 0..8 {
        let rp = randomize(&w.image, &RandomizeConfig::with_seed(seed)).unwrap();
        homes.insert(rp.rand_or_orig(probe));
    }
    assert_eq!(homes.len(), 8, "layouts repeat: {homes:?}");
}

#[test]
fn assembled_rop_chains_execute_before_and_fault_after() {
    // End-to-end §V-B: build the actual stack words for a spawn-shell
    // chain from a workload binary, execute them, then show the same
    // bytes are inert against the randomized layout.
    let w = vcfr::workloads::by_name("sjeng").unwrap();
    let surface = AttackSurface::scan(&w.image);
    let (_, payload) =
        surface.payloads().into_iter().find(|(t, _)| t.name == "spawn-shell").unwrap();
    let words = surface.stack_words(&payload.expect("assembles"));

    let run = surface.launch(&words, 10_000);
    assert!(run.shell(), "chain runs on the original: {:?}", run.result);

    let rp = randomize(&w.image, &RandomizeConfig::with_seed(8)).unwrap();
    let outcome = surface.launch_against(&rp, &words, 10_000);
    assert!(
        !outcome.shell(),
        "chain must not pop a shell on the randomized binary: {:?}",
        outcome.result
    );
}

#[test]
fn function_pointer_hijack_is_contained() {
    // A data-only attack: overwrite a vtable slot with an original-space
    // gadget address. On the original binary the next virtual dispatch
    // executes the gadget; on the randomized binary the stale
    // original-space address is no longer executable code.
    let w = vcfr::workloads::by_name("xalan").unwrap();
    let surface = AttackSurface::scan(&w.image);
    let sys_gadget =
        surface.find(Capability::Syscall).expect("xalan leaks a syscall gadget");
    let slot = w.image.relocs[0].at;

    // Original binary: hijack succeeds.
    let mut victim = vcfr::isa::Machine::new(&w.image);
    victim.mem_mut().write_u64(slot, sys_gadget.addr as u64);
    let out = victim.run(w.max_insts);
    assert!(
        matches!(out, Ok(ref o) if o.stop == vcfr::isa::StopReason::Shell),
        "hijack should succeed on the original binary: {out:?}"
    );

    // Randomized binary: the same overwrite faults at dispatch.
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(9)).unwrap();
    let mut victim = rp.scattered_machine();
    victim.mem_mut().write_u64(slot, sys_gadget.addr as u64);
    let out = victim.run(w.max_insts);
    assert!(
        matches!(out, Err(vcfr::isa::ExecError::BadJumpTarget { .. })),
        "hijack must be contained on the randomized binary: {out:?}"
    );
}

#[test]
fn fuzzer_success_estimate_is_deterministic() {
    // The coverage-guided attacker produces the same success-probability
    // estimate on every run — the property the frontier campaign shards.
    let w = vcfr::workloads::by_name("lbm").unwrap();
    let params = vcfr::core::RandParams::default();
    let fz = vcfr::gadget::FuzzConfig {
        trials: 3,
        probes_per_trial: 12,
        ..vcfr::gadget::FuzzConfig::default()
    };
    let a = vcfr::gadget::fuzz_params(&w.image, &params, &fz);
    let b = vcfr::gadget::fuzz_params(&w.image, &params, &fz);
    assert_eq!(a, b);
    assert!((0.0..=1.0).contains(&a.success_probability()));
}
