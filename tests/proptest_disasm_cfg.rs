//! Property-based tests for the disassembler and CFG builder:
//! robustness on arbitrary byte soup and structural invariants on
//! well-formed programs.

use proptest::prelude::*;
use vcfr::isa::{Image, Section, SectionKind};
use vcfr::rewriter::{address_taken_targets, disassemble, Cfg, Terminator};

/// Wraps arbitrary bytes as a text section with a halt-terminated entry
/// so recursive descent stops immediately and the sweep has to cope with
/// the soup.
fn soup_image(bytes: Vec<u8>) -> Image {
    let mut text = vec![0x01]; // halt at the entry
    text.extend(bytes);
    Image {
        sections: vec![Section { kind: SectionKind::Text, base: 0x1000, bytes: text }],
        entry: 0x1000,
        stack_top: 0xf000,
        symbols: vec![],
        relocs: vec![],
    }
}

proptest! {
    /// The sweeping disassembler must never panic and never fabricate
    /// instructions outside the section.
    #[test]
    fn sweep_is_total_and_in_bounds(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let img = soup_image(bytes);
        let end = img.text().end();
        if let Ok(d) = disassemble(&img) {
            for (addr, inst) in d.iter() {
                prop_assert!(addr >= 0x1000);
                prop_assert!(addr + inst.len() as u32 <= end);
            }
            // The entry halt is always reachable.
            prop_assert!(d.reachable.contains(&0x1000));
        }
    }

    /// CFG invariants over arbitrary (tiny, halt-prefixed) programs:
    /// blocks are non-empty, disjoint in address, and every successor
    /// edge points at a real block start.
    #[test]
    fn cfg_structural_invariants(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let img = soup_image(bytes);
        let Ok(d) = disassemble(&img) else { return Ok(()) };
        let targets = address_taken_targets(&img, &d);
        let cfg = Cfg::build(&img, &d, &targets);

        let mut prev_end = 0u32;
        for (start, block) in &cfg.blocks {
            prop_assert!(!block.insts.is_empty());
            prop_assert_eq!(*start, block.insts[0].0);
            prop_assert!(*start >= prev_end, "blocks overlap");
            prev_end = block.end();
            // Instructions inside a block are contiguous.
            let mut expect = *start;
            for (a, i) in &block.insts {
                prop_assert_eq!(*a, expect);
                expect = a + i.len() as u32;
            }
        }
        for (from, succs) in &cfg.succs {
            prop_assert!(cfg.blocks.contains_key(from));
            for s in succs {
                prop_assert!(cfg.blocks.contains_key(s), "dangling edge {from:#x}->{s:#x}");
            }
        }
        for (to, preds) in &cfg.preds {
            for p in preds {
                prop_assert!(
                    cfg.succs.get(p).map(|ss| ss.contains(to)).unwrap_or(false),
                    "pred/succ asymmetry {p:#x}->{to:#x}"
                );
            }
        }
        // Terminator sanity: return/halt blocks have no successors.
        for (start, block) in &cfg.blocks {
            if matches!(block.term, Terminator::Return | Terminator::Halt) {
                prop_assert!(cfg.succs[start].is_empty());
            }
        }
    }

    /// Image persistence round-trips even for soup sections.
    #[test]
    fn image_persistence_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let img = soup_image(bytes);
        let back = Image::from_bytes(&img.to_bytes()).unwrap();
        prop_assert_eq!(back, img);
    }
}

proptest! {
    /// Artefact deserialization is total: arbitrary bytes (including
    /// valid magic prefixes followed by garbage) never panic.
    #[test]
    fn persistence_never_panics(mut bytes in proptest::collection::vec(any::<u8>(), 0..256),
                                use_magic in any::<bool>()) {
        if use_magic && bytes.len() >= 8 {
            bytes[..8].copy_from_slice(b"VCFRIMG1");
        }
        let _ = Image::from_bytes(&bytes);
        if use_magic && bytes.len() >= 8 {
            bytes[..8].copy_from_slice(b"VCFRRP01");
        }
        let _ = vcfr::rewriter::RandomizedProgram::from_bytes(&bytes);
    }
}
