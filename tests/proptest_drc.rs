//! Property-based tests of the DRC/translation-table pair: the cache is
//! a *pure accelerator* — its answers always equal the table's, for any
//! geometry and any lookup sequence.

use proptest::prelude::*;
use vcfr::core::{Drc, DrcConfig, LayoutMap, OrigAddr, RandAddr, TranslationTable};

fn arb_pairs() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::btree_map(1u32..0x1_0000, 0x10_0000u32..0x11_0000, 1..200)
        .prop_map(|m| {
            // Distinct keys from the btree map; make values distinct by
            // indexing.
            m.into_iter()
                .enumerate()
                .map(|(i, (o, _))| (o, 0x10_0000 + i as u32 * 16))
                .collect()
        })
}

fn arb_geometry() -> impl Strategy<Value = DrcConfig> {
    (0usize..4, prop_oneof![Just(1usize), Just(2), Just(4)]).prop_map(|(size_exp, ways)| {
        DrcConfig { entries: (64 << size_exp) * ways / ways, ways }
    })
}

proptest! {
    /// DRC answers equal table answers on hits AND misses, for any
    /// geometry and access pattern.
    #[test]
    fn drc_is_a_transparent_cache(
        pairs in arb_pairs(),
        geometry in arb_geometry(),
        accesses in proptest::collection::vec((any::<bool>(), 0usize..200), 1..400),
    ) {
        let map = LayoutMap::from_pairs(
            pairs.iter().map(|(o, r)| (OrigAddr(*o), RandAddr(*r))),
        ).unwrap();
        let table = TranslationTable::from_layout(&map, 0x4000_0000);
        let mut drc = Drc::new(geometry);

        for (derand, idx) in accesses {
            let (o, r) = pairs[idx % pairs.len()];
            if derand {
                let got = drc.derandomize(RandAddr(r), &table).unwrap();
                prop_assert_eq!(got.translated, o);
            } else {
                let got = drc.randomize(OrigAddr(o), &table).unwrap();
                prop_assert_eq!(got.translated, r);
            }
        }
        let s = drc.stats();
        prop_assert!(s.misses <= s.lookups);
        prop_assert_eq!(s.derand_lookups + s.rand_lookups, s.lookups);
    }

    /// Repeating one lookup makes it hit: the second access to any key is
    /// a hit as long as nothing conflicting intervened.
    #[test]
    fn immediate_repeat_hits(pairs in arb_pairs(), which in 0usize..200) {
        let map = LayoutMap::from_pairs(
            pairs.iter().map(|(o, r)| (OrigAddr(*o), RandAddr(*r))),
        ).unwrap();
        let table = TranslationTable::from_layout(&map, 0x4000_0000);
        let mut drc = Drc::direct_mapped(64);
        let (_, r) = pairs[which % pairs.len()];
        drc.derandomize(RandAddr(r), &table).unwrap();
        let second = drc.derandomize(RandAddr(r), &table).unwrap();
        prop_assert!(second.hit);
    }

    /// The prohibition property survives arbitrary fail-over additions:
    /// a randomized instruction's original address never translates,
    /// and registered fail-over addresses always do.
    #[test]
    fn prohibition_vs_failover(
        pairs in arb_pairs(),
        failover in proptest::collection::vec(0x20_0000u32..0x20_1000, 0..20),
    ) {
        let map = LayoutMap::from_pairs(
            pairs.iter().map(|(o, r)| (OrigAddr(*o), RandAddr(*r))),
        ).unwrap();
        let mut table = TranslationTable::from_layout(&map, 0x4000_0000);
        for f in &failover {
            table.add_unrandomized(OrigAddr(*f));
        }
        for (o, _) in &pairs {
            prop_assert!(table.derand(RandAddr(*o)).is_err());
        }
        for f in &failover {
            prop_assert_eq!(table.derand(RandAddr(*f)).unwrap(), OrigAddr(*f));
        }
    }
}
