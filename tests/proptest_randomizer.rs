//! Property-based test: for *arbitrary generated programs*, the
//! randomized binary is observationally equivalent to the original.

use proptest::prelude::*;
use vcfr::isa::{AluOp, Asm, Cond, Image, Machine, Reg};
use vcfr::rewriter::{randomize, RandomizeConfig};

/// Registers the generator is allowed to clobber freely.
const SCRATCH: [Reg; 8] =
    [Reg::Rax, Reg::Rdx, Reg::Rsi, Reg::Rdi, Reg::R8, Reg::R9, Reg::R10, Reg::R11];

/// One generated instruction, chosen from a subset that can never fault
/// or diverge.
#[derive(Clone, Debug)]
enum Op {
    MovRI(usize, i64),
    MovRR(usize, usize),
    Alu(AluOp, usize, usize),
    AluI(AluOp, usize, i32),
    Lea(usize, usize, i16),
    Load(usize, u8),
    Store(u8, usize),
    SkipIf(Cond, usize, i32),
    Output(usize),
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Mul),
        Just(AluOp::Shr),
        Just(AluOp::Sar),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::B),
        Just(Cond::A),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    let r = 0usize..SCRATCH.len();
    prop_oneof![
        (r.clone(), any::<i64>()).prop_map(|(d, v)| Op::MovRI(d, v)),
        (r.clone(), r.clone()).prop_map(|(d, s)| Op::MovRR(d, s)),
        (arb_alu(), r.clone(), r.clone()).prop_map(|(op, d, s)| Op::Alu(op, d, s)),
        (arb_alu(), r.clone(), any::<i32>()).prop_map(|(op, d, v)| Op::AluI(op, d, v)),
        (r.clone(), r.clone(), any::<i16>()).prop_map(|(d, b, v)| Op::Lea(d, b, v)),
        (r.clone(), 0u8..32).prop_map(|(d, s)| Op::Load(d, s)),
        (0u8..32, r.clone()).prop_map(|(s, src)| Op::Store(s, src)),
        (arb_cond(), r.clone(), any::<i32>()).prop_map(|(c, l, v)| Op::SkipIf(c, l, v)),
        r.prop_map(Op::Output),
    ]
}

/// Emits the generated body once; `Op::SkipIf` becomes a short forward
/// branch over the next instruction (always well-formed).
fn emit(a: &mut Asm, body: &[Op]) {
    for op in body {
        match *op {
            Op::MovRI(d, v) => a.mov_ri(SCRATCH[d], v),
            Op::MovRR(d, s) => a.mov_rr(SCRATCH[d], SCRATCH[s]),
            Op::Alu(op, d, s) => a.alu_rr(op, SCRATCH[d], SCRATCH[s]),
            Op::AluI(op, d, v) => a.alu_ri(op, SCRATCH[d], v),
            Op::Lea(d, b, v) => a.lea(SCRATCH[d], SCRATCH[b], v as i32),
            Op::Load(d, slot) => a.load(SCRATCH[d], Reg::Rbx, slot as i32 * 8),
            Op::Store(slot, s) => a.store(Reg::Rbx, slot as i32 * 8, SCRATCH[s]),
            Op::SkipIf(cc, l, v) => {
                a.cmp_i(SCRATCH[l], v);
                let skip = a.label();
                a.jcc(cc, skip);
                // The skipped instruction: a benign register nudge.
                a.alu_ri(AluOp::Add, SCRATCH[l], 1);
                a.bind(skip);
            }
            Op::Output(s) => a.emit_output(SCRATCH[s]),
        }
    }
}

fn build_program(body: &[Op], loop_count: u8, with_call: bool) -> Image {
    let mut a = Asm::new(0x1000);
    let scratch = a.data_zeroed(32 * 8);
    a.mov_ri(Reg::Rbx, scratch.0 as i64);
    a.mov_ri(Reg::Rcx, loop_count as i64 + 1);
    let top = a.here();
    emit(&mut a, body);
    if with_call {
        a.call_named("leaf");
    }
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, top);
    a.emit_output(Reg::Rax);
    a.halt();
    a.func("leaf");
    a.alu_ri(AluOp::Add, Reg::Rax, 7);
    a.alu_ri(AluOp::Xor, Reg::Rax, 0x55);
    a.ret();
    a.finish().expect("generated programs assemble")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The headline property: randomization never changes behaviour.
    #[test]
    fn randomization_preserves_semantics(
        body in proptest::collection::vec(arb_op(), 1..40),
        loop_count in 0u8..6,
        with_call in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let image = build_program(&body, loop_count, with_call);
        let want = Machine::new(&image).run(200_000).expect("original runs");
        let rp = randomize(&image, &RandomizeConfig::with_seed(seed)).expect("randomizes");
        let got = rp.scattered_machine().run(200_000).expect("scattered runs");
        prop_assert_eq!(got.output, want.output);
        prop_assert_eq!(got.stop, want.stop);
    }

    /// Structural invariants of the randomizer output.
    #[test]
    fn layout_invariants(
        body in proptest::collection::vec(arb_op(), 1..25),
        seed in any::<u64>(),
    ) {
        let image = build_program(&body, 1, false);
        let rp = randomize(&image, &RandomizeConfig::with_seed(seed)).expect("randomizes");
        // Every randomized instruction lands inside the region and the
        // map round-trips.
        for (o, r) in rp.layout.iter() {
            prop_assert!(r.raw() >= rp.region.0 && r.raw() < rp.region.1);
            prop_assert_eq!(rp.layout.to_orig(r), Some(o));
        }
        // Every instruction got a successor entry.
        prop_assert_eq!(rp.succ.len(), rp.stats.randomized);
        // Original addresses of randomized code are prohibited.
        prop_assert!(rp.table.derand(vcfr::core::RandAddr(image.entry)).is_err());
    }
}
