//! Doc CI: every relative markdown link in the top-level docs and
//! `docs/` must resolve to a real file, so the cross-linked doc set
//! (README → architecture → runbooks) can never silently rot. Std-only
//! by design — this is the `just docs-check` target and part of the
//! smoke chain.

use std::path::{Path, PathBuf};

/// The documents under link checking: the top-level entry points plus
/// everything in `docs/`.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![
        root.join("README.md"),
        root.join("EXPERIMENTS.md"),
        root.join("ROADMAP.md"),
        root.join("DESIGN.md"),
        root.join("CHANGELOG.md"),
    ];
    let entries = std::fs::read_dir(root.join("docs")).expect("docs/ exists");
    for e in entries.flatten() {
        if e.path().extension().is_some_and(|x| x == "md") {
            files.push(e.path());
        }
    }
    files.sort();
    files.retain(|f| f.exists());
    files
}

/// Extracts the targets of inline `[text](target)` links, skipping
/// fenced code blocks (``` … ```), images, and bare `()` parens.
fn link_targets(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while let Some(open) = line[i..].find("](").map(|p| p + i) {
            let start = open + 2;
            match line[start..].find(')').map(|p| p + start) {
                Some(close) if bytes.get(open.wrapping_sub(1)) != Some(&b'!') || open == 0 => {
                    out.push((lineno + 1, line[start..close].to_string()));
                    i = close + 1;
                }
                Some(close) => i = close + 1,
                None => break,
            }
        }
    }
    out
}

/// Whether a link target is out of scope for the filesystem check.
fn external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in doc_files(&root) {
        let text = std::fs::read_to_string(&file).expect("doc readable");
        let base = file.parent().expect("doc has a parent").to_path_buf();
        for (line, raw) in link_targets(&text) {
            if external(&raw) {
                continue;
            }
            // `path#fragment` points at a file section; the file is
            // what must exist.
            let path_part = raw.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            checked += 1;
            // Absolute paths point outside the repo — never allowed in
            // our docs (this is what caught the stale /root/related
            // references); relative ones must resolve from the doc.
            let ok = !path_part.starts_with('/') && base.join(path_part).exists();
            if !ok {
                broken.push(format!(
                    "{}:{line}: broken link -> {raw}",
                    file.strip_prefix(&root).unwrap_or(&file).display()
                ));
            }
        }
    }
    assert!(
        checked > 20,
        "expected the doc set to contain cross-links; only {checked} found (parser regression?)"
    );
    assert!(broken.is_empty(), "broken doc links:\n{}", broken.join("\n"));
}
