//! Guard: the parallel experiment matrix is bit-identical to the serial
//! path.
//!
//! The matrix fans out across worker threads (one job per app ×
//! configuration), so any hidden scheduling dependence — shared RNG
//! state, iteration-order-sensitive reassembly — would show up as a
//! diff between the serial `run_app` results and the parallel ones.
//! Every statistic of every mode is compared through its full `Debug`
//! serialization.

use vcfr_bench::experiments as ex;
use vcfr_workloads::by_name;

#[test]
fn parallel_matrix_matches_serial_run_bit_for_bit() {
    let mut w = by_name("bzip2").expect("suite workload");
    w.max_insts = w.max_insts.min(40_000);
    let serial = ex::run_app(&w);
    for threads in [1, 4] {
        let parallel = ex::run_app_parallel(&w, threads);
        assert_eq!(
            format!("{serial:?}"),
            format!("{parallel:?}"),
            "serial vs {threads}-thread results diverge"
        );
    }
}

#[test]
fn matrix_over_is_thread_count_invariant() {
    let suite: Vec<_> = ["bzip2", "hmmer"]
        .iter()
        .map(|n| {
            let mut w = by_name(n).expect("suite workload");
            w.max_insts = w.max_insts.min(25_000);
            w
        })
        .collect();
    let (one, _) = ex::matrix_over(&suite, 1);
    let (three, timing) = ex::matrix_over(&suite, 3);
    assert_eq!(format!("{one:?}"), format!("{three:?}"));
    // The timing layer records one run per (app, configuration) cell.
    assert_eq!(timing.runs.len(), suite.len() * ex::MODE_NAMES.len());
    assert!(timing.runs.iter().all(|r| r.wall_s >= 0.0 && r.instructions > 0));
}
