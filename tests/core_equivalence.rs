//! Cross-model consistency: the in-order and out-of-order cores are two
//! *timing* views over the same architectural machine, so their
//! functional outcomes and event counts must agree exactly.

use vcfr::core::DrcConfig;
use vcfr::rewriter::{randomize, RandomizeConfig};
use vcfr::sim::{simulate, simulate_multicore, simulate_ooo, Mode, OooConfig, SimConfig};

#[test]
fn inorder_and_ooo_agree_architecturally() {
    for name in ["bzip2", "sjeng"] {
        let w = vcfr::workloads::by_name(name).unwrap();
        let cfg = SimConfig::default();
        let a = simulate(Mode::Baseline(&w.image), &cfg, w.max_insts).unwrap();
        let b = simulate_ooo(Mode::Baseline(&w.image), &cfg, OooConfig::default(), w.max_insts)
            .unwrap();
        assert_eq!(a.outcome.output, b.outcome.output, "{name}");
        assert_eq!(a.stats.instructions, b.stats.instructions, "{name}");
        // Branch event counts are trace properties, identical by
        // construction.
        assert_eq!(a.stats.branch.predictions, b.stats.branch.predictions, "{name}");
        // The wider core must not be slower.
        assert!(b.stats.ipc() >= 0.9 * a.stats.ipc(), "{name}");
    }
}

#[test]
fn vcfr_drc_event_counts_match_across_cores() {
    let w = vcfr::workloads::by_name("hmmer").unwrap();
    let cfg = SimConfig::default();
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(5)).unwrap();
    let mode = || Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) };
    let a = simulate(mode(), &cfg, w.max_insts).unwrap();
    let b = simulate_ooo(mode(), &cfg, OooConfig::default(), w.max_insts).unwrap();
    let (da, db) = (a.stats.drc.unwrap(), b.stats.drc.unwrap());
    // Rand lookups happen once per call on both cores.
    assert_eq!(da.rand_lookups, db.rand_lookups);
    // Derand lookup counts may differ slightly (BTB-miss-driven lookups
    // depend on core timing) but stay in the same regime.
    let ratio = da.derand_lookups as f64 / db.derand_lookups.max(1) as f64;
    assert!((0.5..2.0).contains(&ratio), "derand ratio {ratio}");
}

#[test]
fn singlecore_and_multicore_agree_for_one_core() {
    // A one-core "multi-core" run is just the in-order model with the
    // shared-L2 plumbing; IPC should be close.
    let w = vcfr::workloads::by_name("lbm").unwrap();
    let cfg = SimConfig::default();
    let solo = simulate(Mode::Baseline(&w.image), &cfg, 300_000).unwrap();
    let multi = simulate_multicore(&[Mode::Baseline(&w.image)], &cfg, 300_000).unwrap();
    assert_eq!(multi.per_core.len(), 1);
    assert_eq!(multi.per_core[0].instructions, solo.stats.instructions);
    let ratio = multi.per_core[0].ipc() / solo.stats.ipc();
    assert!((0.8..1.25).contains(&ratio), "ipc ratio {ratio}");
}
