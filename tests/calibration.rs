//! Calibration regression guards: the headline paper-shape numbers must
//! stay inside their bands.
//!
//! These run the full 11-app × 5-config matrix, which is only reasonable
//! in release mode, so they are `#[ignore]`d by default:
//!
//! ```text
//! cargo test --release -p vcfr --test calibration -- --ignored
//! ```

use vcfr_bench::experiments as ex;

#[test]
#[ignore = "full matrix; run with --release -- --ignored"]
fn headline_numbers_stay_in_their_bands() {
    let m = ex::run_matrix();

    // Figure 4: naive ILR normalized IPC, paper mean 0.61–0.66.
    let fig4 = ex::mean(ex::fig4(&m).iter().map(|r| r.1));
    assert!((0.50..=0.75).contains(&fig4), "fig4 mean {fig4}");

    // Figure 12: VCFR speedup over naive, paper 1.63x.
    let fig12 = ex::geomean(ex::fig12(&m).iter().map(|r| r.1));
    assert!((1.4..=2.6).contains(&fig12), "fig12 geomean {fig12}");

    // Figure 13: VCFR at 64-entry DRC keeps ≥94% of baseline on average.
    let fig13_64 = ex::mean(ex::fig13(&m).iter().map(|r| r.3));
    assert!(fig13_64 >= 0.94, "fig13@64 mean {fig13_64}");

    // Figure 14: monotone DRC miss rates, sane magnitudes.
    let (m512, m64): (Vec<f64>, Vec<f64>) =
        ex::fig14(&m).iter().map(|r| (r.1, r.2)).unzip();
    assert!(ex::mean(m512.iter().copied()) < ex::mean(m64.iter().copied()));
    assert!(ex::mean(m64.iter().copied()) < 35.0);

    // Figure 15: DRC power overhead stays sub-percent on average.
    let fig15 = ex::mean(ex::fig15(&m).iter().map(|r| r.1));
    assert!(fig15 < 1.0, "fig15 mean {fig15}%");
}

#[test]
#[ignore = "full security sweep; run with --release -- --ignored"]
fn gadget_removal_stays_above_97_percent() {
    let rows = ex::fig11();
    let mean = ex::mean(rows.iter().map(|r| r.removal_pct));
    assert!(mean > 97.0, "fig11 mean {mean}%");
    assert!(rows.iter().all(|r| r.payloads_after == 0));
}
