//! Cross-crate checks of the timing pipeline: the orderings the paper's
//! performance figures rest on must hold on reduced runs.

use vcfr::core::DrcConfig;
use vcfr::rewriter::{randomize, RandomizeConfig};
use vcfr::sim::{simulate, Mode, SimConfig};

const BUDGET: u64 = 150_000;

struct Quad {
    base: vcfr::sim::SimStats,
    naive: vcfr::sim::SimStats,
    vcfr64: vcfr::sim::SimStats,
    vcfr512: vcfr::sim::SimStats,
}

fn run(name: &str) -> Quad {
    let w = vcfr::workloads::by_name(name).expect("known workload");
    let cfg = SimConfig::default();
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(11)).unwrap();
    let base = simulate(Mode::Baseline(&w.image), &cfg, BUDGET).unwrap();
    let naive = simulate(Mode::NaiveIlr(&rp), &cfg, BUDGET).unwrap();
    let v64 = simulate(
        Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(64) },
        &cfg,
        BUDGET,
    )
    .unwrap();
    let v512 = simulate(
        Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(512) },
        &cfg,
        BUDGET,
    )
    .unwrap();
    Quad { base: base.stats, naive: naive.stats, vcfr64: v64.stats, vcfr512: v512.stats }
}

#[test]
fn vcfr_beats_naive_and_tracks_baseline() {
    for name in ["gcc", "h264ref", "bzip2"] {
        let q = run(name);
        assert!(
            q.vcfr512.ipc() > q.naive.ipc(),
            "{name}: vcfr {} <= naive {}",
            q.vcfr512.ipc(),
            q.naive.ipc()
        );
        assert!(
            q.vcfr512.ipc() > 0.9 * q.base.ipc(),
            "{name}: vcfr too slow ({} vs {})",
            q.vcfr512.ipc(),
            q.base.ipc()
        );
    }
}

#[test]
fn naive_ilr_raises_il1_misses_and_l2_pressure() {
    for name in ["gcc", "xalan"] {
        let q = run(name);
        assert!(q.naive.il1.misses > 3 * q.base.il1.misses.max(1), "{name}");
        assert!(q.naive.l2_reads_from_l1 > q.base.l2_reads_from_l1, "{name}");
    }
}

#[test]
fn drc_scaling_is_monotone() {
    for name in ["gcc", "xalan"] {
        let q = run(name);
        let m64 = q.vcfr64.drc.unwrap().miss_rate();
        let m512 = q.vcfr512.drc.unwrap().miss_rate();
        assert!(m512 <= m64, "{name}: {m512} > {m64}");
        assert!(q.vcfr512.ipc() >= q.vcfr64.ipc(), "{name}");
    }
}

#[test]
fn vcfr_preserves_branch_prediction_quality() {
    // §IV-D: predictions operate in the original space, so rates match
    // the baseline exactly (same predictor, same trace, same keys).
    let q = run("sjeng");
    assert_eq!(q.base.branch.predictions, q.vcfr512.branch.predictions);
    assert_eq!(q.base.branch.mispredictions, q.vcfr512.branch.mispredictions);
}

#[test]
fn power_overhead_is_sub_percent_at_128_entries() {
    let w = vcfr::workloads::by_name("hmmer").unwrap();
    let cfg = SimConfig::default();
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(11)).unwrap();
    let drc = DrcConfig::direct_mapped(128);
    let out = simulate(Mode::Vcfr { program: &rp, drc }, &cfg, BUDGET).unwrap();
    let p = vcfr::power::analyze(&out.stats, &cfg, Some(drc));
    let pct = p.drc_overhead_pct();
    assert!(pct > 0.0 && pct < 1.5, "DRC power overhead {pct}%");
}
