//! The rewriter's contract: a randomized binary is semantically identical
//! to the original. Verified over the entire workload suite, end to end.

use vcfr::rewriter::{randomize, RandomizeConfig};

#[test]
fn every_workload_survives_randomization() {
    for w in vcfr::workloads::all() {
        let want = w.run_reference().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let rp = randomize(&w.image, &RandomizeConfig::with_seed(99))
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let got = rp
            .scattered_machine()
            .run(w.max_insts)
            .unwrap_or_else(|e| panic!("{} (scattered): {e}", w.name));
        assert_eq!(got.output, want.output, "{} diverged after randomization", w.name);
        assert_eq!(got.stop, want.stop, "{} stop reason changed", w.name);
    }
}

#[test]
fn randomization_is_seed_deterministic_but_seed_sensitive() {
    let w = vcfr::workloads::by_name("hmmer").unwrap();
    let a = randomize(&w.image, &RandomizeConfig::with_seed(5)).unwrap();
    let b = randomize(&w.image, &RandomizeConfig::with_seed(5)).unwrap();
    let c = randomize(&w.image, &RandomizeConfig::with_seed(6)).unwrap();
    let collect = |rp: &vcfr::rewriter::RandomizedProgram| {
        let mut v: Vec<_> = rp.layout.iter().collect();
        v.sort();
        v
    };
    assert_eq!(collect(&a), collect(&b));
    assert_ne!(collect(&a), collect(&c));
}

#[test]
fn failover_functions_keep_working_across_the_boundary() {
    // Randomize a workload but pin some library functions: calls cross
    // from randomized into un-randomized code and back.
    let w = vcfr::workloads::by_name("bzip2").unwrap();
    let want = w.run_reference().unwrap();
    let mut cfg = RandomizeConfig::with_seed(3);
    cfg.keep_unrandomized = vec!["lib2".into(), "lib6".into(), "summarize".into()];
    let rp = randomize(&w.image, &cfg).unwrap();
    assert!(rp.stats.unrandomized > 0);
    let got = rp.scattered_machine().run(w.max_insts).unwrap();
    assert_eq!(got.output, want.output);
}
