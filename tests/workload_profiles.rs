//! Characterisation tests: each synthetic stand-in must actually exhibit
//! the profile its SPEC counterpart is chosen for (these are the
//! properties the substitution argument in DESIGN.md rests on).

use vcfr::rewriter::{analyze_control_flow, disassemble};
use vcfr::sim::{simulate, Mode, SimConfig};

fn stats_of(name: &str) -> vcfr::rewriter::ControlFlowStats {
    let w = vcfr::workloads::by_name(name).unwrap();
    let d = disassemble(&w.image).unwrap();
    analyze_control_flow(&w.image, &d)
}

#[test]
fn xalan_is_the_indirect_call_champion() {
    let xalan_dynamic = {
        let w = vcfr::workloads::by_name("xalan").unwrap();
        let out = simulate(Mode::Baseline(&w.image), &SimConfig::default(), 200_000).unwrap();
        out.stats.branch.btb_lookups
    };
    assert!(xalan_dynamic > 0);
    // Statically, xalan's per-node handler pointers give it relocations
    // no other workload approaches.
    let w = vcfr::workloads::by_name("xalan").unwrap();
    for other in ["bzip2", "hmmer", "lbm"] {
        let o = vcfr::workloads::by_name(other).unwrap();
        assert!(
            w.image.relocs.len() > 10 * o.image.relocs.len().max(1),
            "xalan {} vs {other} {}",
            w.image.relocs.len(),
            o.image.relocs.len()
        );
    }
}

#[test]
fn gcc_and_xalan_have_the_biggest_code() {
    let sizes: Vec<(String, usize)> = vcfr::workloads::spec_suite()
        .iter()
        .map(|w| (w.name.to_string(), w.image.text().bytes.len()))
        .collect();
    let biggest = sizes.iter().max_by_key(|(_, s)| *s).unwrap().0.clone();
    assert!(biggest == "gcc" || biggest == "xalan", "biggest was {biggest}");
}

#[test]
fn mcf_is_memory_latency_bound() {
    let w = vcfr::workloads::by_name("mcf").unwrap();
    let out = simulate(Mode::Baseline(&w.image), &SimConfig::default(), 400_000).unwrap();
    // Pointer chasing: a large share of cycles stall on data.
    let frac = out.stats.load_stall_cycles as f64 / out.stats.cycles as f64;
    assert!(frac > 0.3, "mcf data-stall fraction {frac}");
    // And DL1 genuinely misses.
    assert!(out.stats.dl1.miss_rate() > 0.02, "{}", out.stats.dl1.miss_rate());
}

#[test]
fn memcpy_has_the_smallest_hot_code() {
    let sizes: Vec<(String, u64)> = vcfr::workloads::all()
        .iter()
        .map(|w| {
            let d = disassemble(&w.image).unwrap();
            (w.name.to_string(), d.len() as u64)
        })
        .collect();
    let memcpy = sizes.iter().find(|(n, _)| n == "memcpy").unwrap().1;
    // Only the runtime library pads it; every SPEC stand-in is bigger.
    for (n, s) in &sizes {
        if n != "memcpy" {
            assert!(*s >= memcpy, "{n} ({s}) smaller than memcpy ({memcpy})");
        }
    }
}

#[test]
fn sjeng_exercises_deep_recursion() {
    let w = vcfr::workloads::by_name("sjeng").unwrap();
    let out = simulate(Mode::Baseline(&w.image), &SimConfig::default(), w.max_insts).unwrap();
    // Thousands of call/ret pairs, and the RAS handles them well.
    assert!(out.stats.branch.ras_predictions > 2_000);
    let ras_rate =
        out.stats.branch.ras_mispredictions as f64 / out.stats.branch.ras_predictions as f64;
    assert!(ras_rate < 0.05, "RAS misprediction rate {ras_rate}");
}

#[test]
fn interpreter_workloads_are_indirect_jump_heavy() {
    for name in ["gcc", "python"] {
        let s = stats_of(name);
        assert!(s.indirect_transfers >= 30, "{name}: {}", s.indirect_transfers);
    }
    // Numeric kernels have none beyond the runtime library.
    for name in ["lbm", "namd"] {
        let s = stats_of(name);
        assert!(s.indirect_transfers <= 2, "{name}: {}", s.indirect_transfers);
    }
}

#[test]
fn branch_predictability_matches_the_kernels() {
    let rate = |name: &str| {
        let w = vcfr::workloads::by_name(name).unwrap();
        let out = simulate(Mode::Baseline(&w.image), &SimConfig::default(), 300_000).unwrap();
        out.stats.branch.mispredict_rate()
    };
    // memcpy is pure counted loops: near-perfect prediction.
    assert!(rate("memcpy") < 0.01, "memcpy {}", rate("memcpy"));
    // libquantum's controlled-flip gate branches on a pseudo-random
    // amplitude bit — essentially unpredictable in that pass.
    assert!(rate("libquantum") > 0.05, "libquantum {}", rate("libquantum"));
    // bzip2's run-detection branch is data-dependent but heavily biased
    // (runs are rare in pseudo-random data): low but non-zero.
    let b = rate("bzip2");
    assert!(b > 0.0005 && b < 0.05, "bzip2 {b}");
}
