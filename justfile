# Developer entry points. `just` is optional — every recipe is one
# cargo command, and `.cargo/config.toml` provides the same commands as
# `cargo repro-check` / `cargo bench-smoke` when `just` is absent.

# Run the CI gate and the engine criterion smoke.
bench: repro-check bench-smoke

# Recompute the experiment matrix and gate the headline numbers.
repro-check:
    cargo run --release -p vcfr-bench --bin repro -- check

# Criterion smoke of the cycle engine: the per-instruction hot loop plus
# superblock formation and fast-path replay (docs/superblocks.md).
bench-smoke:
    cargo bench -p vcfr-bench --bench components -- engine

# Superblock equivalence smoke: every workload x {base, vcfr, rerand,
# faulted}, fast path on vs off, byte-identical stats, samples, fault
# records, and checkpoints (docs/superblocks.md).
superblock-smoke:
    cargo test --release -p vcfr-sim --test superblock_equiv

# Observability smoke: manifests byte-identical across thread counts,
# parse round trip, and audit identity (see docs/observability.md).
obs-smoke:
    cargo run --release -p vcfr-bench --bin repro -- obs-smoke

# Fault-injection smoke: seeded 1-app campaign, determinism across
# thread counts, audits, VCFR > baseline coverage
# (see docs/fault-injection.md).
faults-smoke:
    cargo run --release -p vcfr-bench --bin repro -- faults-smoke

# Service smoke: start the batch daemon, submit two jobs, SIGKILL it
# mid-run, restart, and byte-compare the resumed manifests against an
# uninterrupted run (see docs/service.md).
serve-smoke:
    cargo test --release -p vcfr-cli --test serve_smoke

# Telemetry smoke: manifests and checkpoints byte-identical with the
# progress-event tap on vs off, across worker-thread counts
# (see docs/observability.md).
telemetry-smoke:
    cargo run --release -p vcfr-bench --bin repro -- telemetry-smoke

# Multicore smoke: VCFR core + baseline sibling over the shared L2,
# rerand epochs firing mid-run on one core only, manifests
# byte-identical across worker-thread counts, outputs equal to solo
# baseline runs (see docs/architecture.md).
multicore-smoke:
    cargo run --release -p vcfr-bench --bin repro -- multicore-smoke

# Fleet smoke: coordinator + two worker daemons run a sharded matrix
# and fault campaign, one worker is SIGKILLed mid-campaign, its chunks
# resume from checkpoints elsewhere, and the merged manifest tree is
# byte-identical to a single-daemon run (see docs/fleet.md).
fleet-smoke:
    cargo test --release -p vcfr-cli --test fleet_smoke

# Security smoke: a tiny 2-point entropy frontier (coverage-guided
# gadget fuzzing + slowdown + fault coverage), manifests byte-identical
# across worker-thread counts (see docs/security.md).
security-smoke:
    cargo run --release -p vcfr-bench --bin repro -- frontier-smoke

# Doc CI: every relative markdown link in README.md, EXPERIMENTS.md,
# ROADMAP.md, DESIGN.md, CHANGELOG.md and docs/*.md must resolve.
docs-check:
    cargo test -p vcfr --test docs_check

# Every end-to-end smoke in one go.
smoke: obs-smoke faults-smoke serve-smoke fleet-smoke superblock-smoke telemetry-smoke multicore-smoke security-smoke docs-check

# Full test suite across the workspace.
test:
    cargo test --workspace
